// Runtime adaptation demo (Section 3.7): stream rates shift, the load
// balance degrades, and adaptation rounds restore it while keeping the
// communication cost low — with far fewer migrations than remapping from
// scratch.
#include <cstdio>

#include "coord/hierarchy.h"
#include "sim/cost_model.h"
#include "sim/metrics.h"
#include "sim/workload.h"

using namespace cosmos;

int main() {
  Rng rng{5};
  net::TransitStubParams tp;
  tp.transit_domains = 2;
  tp.transit_nodes_per_domain = 2;
  tp.stub_domains_per_transit = 3;
  tp.stub_nodes_per_domain = 24;
  const auto topo = net::make_transit_stub(tp, rng);
  net::DeploymentParams dp;
  dp.num_sources = 10;
  dp.num_processors = 48;
  const auto deployment = net::make_deployment(topo, dp, rng);
  coord::CoordinatorTree tree{deployment, 4, rng};

  sim::WorkloadParams wp;
  wp.num_substreams = 3000;
  wp.groups = 8;
  wp.interest_min = 15;
  wp.interest_max = 40;
  sim::WorkloadGenerator workload{deployment, wp, 6};
  auto profiles = workload.make_queries(1500);

  coord::HierarchicalDistributor dist{deployment, tree, workload.space(),
                                      coord::HierarchyParams{}, 8};
  dist.distribute(profiles);
  const sim::CostModel cost{topo, deployment};

  const auto report = [&](const char* label) {
    std::unordered_map<QueryId, query::InterestProfile> pmap;
    for (const auto& p : profiles) pmap.emplace(p.query, p);
    std::printf("%-28s cost=%.4e  load-stddev=%.4f\n", label,
                cost.pairwise_cost(dist.placement(), pmap, workload.space())
                    .total(),
                sim::load_stddev(dist.placement(), pmap, deployment));
  };
  report("initial distribution");

  for (int event = 0; event < 4; ++event) {
    workload.perturb_rates(120, event % 2 == 0 ? 5.0 : 0.2);
    workload.refresh_profiles(profiles);
    dist.refresh_statistics();
    report("after rate perturbation");
    const auto r = dist.adapt();
    std::printf("  adaptation migrated %zu queries (%.0f bytes of state)\n",
                r.migrated_queries, r.migrated_state);
    report("after adaptation round");
  }
  return 0;
}
