#include "coord/diffusion.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cosmos::coord {
namespace {

/// y = L x for the weighted Laplacian.
void laplacian_apply(std::size_t n, const std::vector<DiffusionEdge>& edges,
                     const std::vector<double>& x, std::vector<double>& y) {
  y.assign(n, 0.0);
  for (const auto& e : edges) {
    const double d = x[e.a] - x[e.b];
    y[e.a] += e.conductance * d;
    y[e.b] -= e.conductance * d;
  }
}

/// Connected components (for mean removal per component).
std::vector<std::size_t> components(std::size_t n,
                                    const std::vector<DiffusionEdge>& edges) {
  std::vector<std::vector<std::size_t>> adj(n);
  for (const auto& e : edges) {
    adj[e.a].push_back(e.b);
    adj[e.b].push_back(e.a);
  }
  std::vector<std::size_t> comp(n, SIZE_MAX);
  std::size_t next = 0;
  std::vector<std::size_t> stack;
  for (std::size_t s = 0; s < n; ++s) {
    if (comp[s] != SIZE_MAX) continue;
    comp[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const auto u = stack.back();
      stack.pop_back();
      for (const auto v : adj[u]) {
        if (comp[v] == SIZE_MAX) {
          comp[v] = next;
          stack.push_back(v);
        }
      }
    }
    ++next;
  }
  return comp;
}

}  // namespace

std::vector<DiffusionFlow> solve_diffusion(
    std::size_t n, const std::vector<DiffusionEdge>& edges,
    const std::vector<double>& imbalance, double tolerance,
    std::size_t max_iterations) {
  if (imbalance.size() != n) {
    throw std::invalid_argument{"solve_diffusion: imbalance size mismatch"};
  }
  for (const auto& e : edges) {
    if (e.a >= n || e.b >= n || e.a == e.b || e.conductance <= 0) {
      throw std::invalid_argument{"solve_diffusion: bad edge"};
    }
  }
  if (n == 0) return {};

  // Project b onto the solvable subspace: remove the per-component mean
  // (total load in a component cannot leave it).
  std::vector<double> b = imbalance;
  const auto comp = components(n, edges);
  const std::size_t ncomp =
      1 + (n ? *std::max_element(comp.begin(), comp.end()) : 0);
  std::vector<double> comp_sum(ncomp, 0.0);
  std::vector<std::size_t> comp_size(ncomp, 0);
  for (std::size_t i = 0; i < n; ++i) {
    comp_sum[comp[i]] += b[i];
    ++comp_size[comp[i]];
  }
  for (std::size_t i = 0; i < n; ++i) {
    b[i] -= comp_sum[comp[i]] / static_cast<double>(comp_size[comp[i]]);
  }

  // Conjugate gradients on L λ = b.
  std::vector<double> lambda(n, 0.0), r = b, p = b, lp(n);
  double rr = std::inner_product(r.begin(), r.end(), r.begin(), 0.0);
  const double b_norm = std::sqrt(rr);
  if (b_norm < tolerance) return {};
  for (std::size_t it = 0; it < max_iterations && std::sqrt(rr) > tolerance * (1 + b_norm);
       ++it) {
    laplacian_apply(n, edges, p, lp);
    const double p_lp =
        std::inner_product(p.begin(), p.end(), lp.begin(), 0.0);
    if (p_lp <= 0) break;  // numerical floor (p in the null space)
    const double alpha = rr / p_lp;
    for (std::size_t i = 0; i < n; ++i) {
      lambda[i] += alpha * p[i];
      r[i] -= alpha * lp[i];
    }
    const double rr_new =
        std::inner_product(r.begin(), r.end(), r.begin(), 0.0);
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
  }

  std::vector<DiffusionFlow> flows;
  for (const auto& e : edges) {
    const double m = e.conductance * (lambda[e.a] - lambda[e.b]);
    if (m > tolerance) {
      flows.push_back({e.a, e.b, m});
    } else if (m < -tolerance) {
      flows.push_back({e.b, e.a, -m});
    }
  }
  return flows;
}

}  // namespace cosmos::coord
