// Tokenizer for the CQL subset (SELECT/FROM/WHERE with window clauses).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace cosmos::cql {

enum class TokenKind {
  kIdent,    // snowHeight, Station1
  kNumber,   // 10, 3.5, -2
  kString,   // 'abc'
  kKeyword,  // SELECT FROM WHERE AND OR NOT RANGE NOW UNBOUNDED ...
  kSymbol,   // ( ) [ ] , . * < <= > >= = !=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     ///< raw text; keywords upper-cased
  double number = 0.0;  ///< valid for kNumber
  std::size_t offset = 0;

  [[nodiscard]] bool is_keyword(const char* kw) const noexcept {
    return kind == TokenKind::kKeyword && text == kw;
  }
  [[nodiscard]] bool is_symbol(const char* s) const noexcept {
    return kind == TokenKind::kSymbol && text == s;
  }
};

/// Throws ParseError (std::runtime_error) on malformed input.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t offset);
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

[[nodiscard]] std::vector<Token> tokenize(const std::string& input);

}  // namespace cosmos::cql
