// True communication cost of a query placement (the metric the paper plots
// as "Weighted Comm. Cost").
//
// Unlike the WEC — the optimizer's objective — this model simulates what the
// pub/sub substrate actually does: each substream is multicast from its
// source along the union of shortest paths to every processor hosting an
// interested query (one copy per link: the pub/sub sharing), and each query
// result travels from its host to its proxy. Cost = sum over links of
// rate * latency. Result traffic to a local user (host == proxy) is free,
// which matches the paper's subtraction of the identical local-delivery
// term.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "net/deployment.h"
#include "net/shortest_paths.h"
#include "net/topology.h"
#include "query/interest.h"

namespace cosmos::sim {

class CostModel {
 public:
  CostModel(const net::Topology& topo, const net::Deployment& deployment);

  struct Breakdown {
    double source_cost = 0.0;  ///< shared multicast of substreams
    double result_cost = 0.0;  ///< per-query result unicast
    [[nodiscard]] double total() const noexcept {
      return source_cost + result_cost;
    }
  };

  /// Evaluates a placement with router-level multicast sharing (union of
  /// shortest-path-tree branches; one copy per physical link).
  [[nodiscard]] Breakdown communication_cost(
      const std::unordered_map<QueryId, NodeId>& placement,
      const std::unordered_map<QueryId, query::InterestProfile>& profiles,
      const query::SubstreamSpace& space) const;

  /// The paper's simulation metric (Section 3.1.1): overlay-level weighted
  /// traffic sum(r(ni,nj) * d(ni,nj)). A substream is delivered once per
  /// *subscribing processor* (sharing through co-location of queries), and
  /// results travel host -> proxy. This is the number the Fig 6-10 plots
  /// report.
  [[nodiscard]] Breakdown pairwise_cost(
      const std::unordered_map<QueryId, NodeId>& placement,
      const std::unordered_map<QueryId, query::InterestProfile>& profiles,
      const query::SubstreamSpace& space) const;

 private:
  const net::Topology* topo_;
  const net::Deployment* deployment_;
  /// Shortest-path tree per source (multicast delivery trees).
  std::unordered_map<NodeId, net::ShortestPathTree> spt_;
};

}  // namespace cosmos::sim
