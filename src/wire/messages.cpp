#include "wire/messages.h"

namespace cosmos::wire {
namespace {

/// Every element of a counted list occupies at least one byte, so a count
/// larger than the bytes left is a corrupt prefix — reject before resize.
void check_count(std::uint64_t count, std::size_t remaining,
                 const char* what) {
  if (count > remaining) {
    throw Error{std::string{"wire: implausible "} + what + " count " +
                std::to_string(count)};
  }
}

[[nodiscard]] Frame finish(FrameType type, Writer&& w) {
  return Frame{type, w.take()};
}

[[nodiscard]] Reader open(const Frame& f, FrameType expect) {
  if (f.type != expect) {
    throw Error{std::string{"wire: expected "} + to_string(expect) +
                " frame, got " + to_string(f.type)};
  }
  return Reader{f.payload};
}

void encode_node_id(Writer& w, NodeId id) { w.u32(id.value()); }
[[nodiscard]] NodeId decode_node_id(Reader& r) { return NodeId{r.u32()}; }

void encode_unit_state(Writer& w, const UnitStateMsg& u) {
  w.u32(u.unit_id);
  encode_join_state(w, u.joins);
}

[[nodiscard]] UnitStateMsg decode_unit_state(Reader& r) {
  UnitStateMsg u;
  u.unit_id = r.u32();
  u.joins = decode_join_state(r);
  return u;
}

void encode_floors(Writer& w, const std::vector<EngineFloor>& floors) {
  w.u32(static_cast<std::uint32_t>(floors.size()));
  for (const auto& f : floors) {
    encode_node_id(w, f.engine);
    w.u64(f.seq);
  }
}

[[nodiscard]] std::vector<EngineFloor> decode_floors(Reader& r) {
  const std::uint32_t count = r.u32();
  check_count(count, r.remaining(), "engine floor");
  std::vector<EngineFloor> floors;
  floors.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    EngineFloor f;
    f.engine = decode_node_id(r);
    f.seq = r.u64();
    floors.push_back(f);
  }
  return floors;
}

void encode_deploy_payload(Writer& w, const DeployUnitMsg& m) {
  w.u32(m.unit_id);
  encode_node_id(w, m.host);
  w.str(m.result_stream);
  encode_query_spec(w, m.spec);
}

[[nodiscard]] DeployUnitMsg decode_deploy_payload(Reader& r) {
  DeployUnitMsg m;
  m.unit_id = r.u32();
  m.host = decode_node_id(r);
  m.result_stream = r.str();
  m.spec = decode_query_spec(r);
  return m;
}

}  // namespace

Frame encode_hello(const HelloMsg& m) {
  Writer w;
  w.u16(m.protocol);
  w.u32(m.worker_index);
  w.u32(m.shards);
  w.i64(m.send_delay_ms);
  w.i64(m.stats_sample_every_ms);
  w.u8(m.trace);
  w.u8(m.peer_links);
  w.i64(m.heartbeat_every_ms);
  w.i64(m.liveness_deadline_ms);
  return finish(FrameType::kHello, std::move(w));
}

HelloMsg decode_hello(const Frame& f) {
  auto r = open(f, FrameType::kHello);
  HelloMsg m;
  m.protocol = r.u16();
  m.worker_index = r.u32();
  m.shards = r.u32();
  m.send_delay_ms = r.i64();
  m.stats_sample_every_ms = r.i64();
  m.trace = r.u8();
  m.peer_links = r.u8();
  m.heartbeat_every_ms = r.i64();
  m.liveness_deadline_ms = r.i64();
  r.done();
  return m;
}

Frame encode_hello_ack(const HelloAckMsg& m) {
  Writer w;
  w.str(m.info);
  return finish(FrameType::kHelloAck, std::move(w));
}

HelloAckMsg decode_hello_ack(const Frame& f) {
  auto r = open(f, FrameType::kHelloAck);
  HelloAckMsg m;
  m.info = r.str();
  r.done();
  return m;
}

Frame encode_topology(const TopologyMsg& m) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(m.participants.size()));
  for (NodeId id : m.participants) encode_node_id(w, id);
  w.u32(static_cast<std::uint32_t>(m.members.size()));
  for (NodeId id : m.members) encode_node_id(w, id);
  if (m.dense.size() != m.members.size() * m.members.size()) {
    throw Error{"wire: topology dense matrix is not members^2"};
  }
  for (double d : m.dense) w.f64(d);
  w.u8(m.use_index ? 1 : 0);
  return finish(FrameType::kTopology, std::move(w));
}

TopologyMsg decode_topology(const Frame& f) {
  auto r = open(f, FrameType::kTopology);
  TopologyMsg m;
  const std::uint32_t participants = r.u32();
  check_count(participants, r.remaining(), "topology participant");
  m.participants.reserve(participants);
  for (std::uint32_t i = 0; i < participants; ++i) {
    m.participants.push_back(decode_node_id(r));
  }
  const std::uint32_t members = r.u32();
  check_count(members, r.remaining(), "topology member");
  m.members.reserve(members);
  for (std::uint32_t i = 0; i < members; ++i) {
    m.members.push_back(decode_node_id(r));
  }
  const std::uint64_t cells =
      static_cast<std::uint64_t>(members) * members;
  check_count(cells, r.remaining(), "topology matrix cell");
  m.dense.reserve(cells);
  for (std::uint64_t i = 0; i < cells; ++i) m.dense.push_back(r.f64());
  m.use_index = r.u8() != 0;
  r.done();
  return m;
}

Frame encode_register_stream(const RegisterStreamMsg& m) {
  Writer w;
  w.str(m.stream);
  encode_node_id(w, m.publisher);
  encode_schema(w, m.schema);
  return finish(FrameType::kRegisterStream, std::move(w));
}

RegisterStreamMsg decode_register_stream(const Frame& f) {
  auto r = open(f, FrameType::kRegisterStream);
  RegisterStreamMsg m;
  m.stream = r.str();
  m.publisher = decode_node_id(r);
  m.schema = decode_schema(r);
  r.done();
  return m;
}

Frame encode_subscribe(const SubscribeMsg& m) {
  Writer w;
  encode_subscription(w, m.sub);
  return finish(FrameType::kSubscribe, std::move(w));
}

SubscribeMsg decode_subscribe(const Frame& f) {
  auto r = open(f, FrameType::kSubscribe);
  SubscribeMsg m;
  m.sub = decode_subscription(r);
  r.done();
  return m;
}

Frame encode_deploy_unit(const DeployUnitMsg& m) {
  Writer w;
  encode_deploy_payload(w, m);
  return finish(FrameType::kDeployUnit, std::move(w));
}

DeployUnitMsg decode_deploy_unit(const Frame& f) {
  auto r = open(f, FrameType::kDeployUnit);
  DeployUnitMsg m = decode_deploy_payload(r);
  r.done();
  return m;
}

Frame encode_match_request(const MatchRequestMsg& m) {
  Writer w;
  w.u64(m.job);
  encode_batch(w, m.batch);
  return finish(FrameType::kMatchRequest, std::move(w));
}

MatchRequestMsg decode_match_request(const Frame& f) {
  auto r = open(f, FrameType::kMatchRequest);
  MatchRequestMsg m;
  m.job = r.u64();
  m.batch = decode_batch(r);
  r.done();
  return m;
}

Frame encode_match_response(const MatchResponseMsg& m) {
  Writer w;
  w.u64(m.job);
  w.u32(static_cast<std::uint32_t>(m.deliveries.size()));
  for (const auto& [sub, rows] : m.deliveries) {
    w.u32(sub.value());
    w.u32(static_cast<std::uint32_t>(rows.size()));
    for (std::uint32_t row : rows) w.u32(row);
  }
  return finish(FrameType::kMatchResponse, std::move(w));
}

MatchResponseMsg decode_match_response(const Frame& f) {
  auto r = open(f, FrameType::kMatchResponse);
  MatchResponseMsg m;
  m.job = r.u64();
  const std::uint32_t deliveries = r.u32();
  check_count(deliveries, r.remaining(), "match delivery");
  m.deliveries.reserve(deliveries);
  for (std::uint32_t i = 0; i < deliveries; ++i) {
    const SubscriptionId sub{r.u32()};
    const std::uint32_t rows = r.u32();
    check_count(rows, r.remaining(), "matched row");
    std::vector<std::uint32_t> indices;
    indices.reserve(rows);
    for (std::uint32_t j = 0; j < rows; ++j) indices.push_back(r.u32());
    m.deliveries.emplace_back(sub, std::move(indices));
  }
  r.done();
  return m;
}

Frame encode_execute(const ExecuteMsg& m) {
  Writer w;
  encode_node_id(w, m.engine);
  encode_batch(w, m.batch);
  w.u64(m.ingest_ns);
  w.u64(m.seq);
  return finish(FrameType::kExecute, std::move(w));
}

ExecuteMsg decode_execute(const Frame& f) {
  auto r = open(f, FrameType::kExecute);
  ExecuteMsg m;
  m.engine = decode_node_id(r);
  m.batch = decode_batch(r);
  m.ingest_ns = r.u64();
  m.seq = r.u64();
  r.done();
  return m;
}

Frame encode_result(const ResultMsg& m) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(m.events.size()));
  for (const auto& e : m.events) {
    w.str(e.stream);
    encode_tuple(w, e.tuple);
    w.u64(e.ingest_ns);
  }
  return finish(FrameType::kResult, std::move(w));
}

ResultMsg decode_result(const Frame& f) {
  auto r = open(f, FrameType::kResult);
  ResultMsg m;
  const std::uint32_t events = r.u32();
  check_count(events, r.remaining(), "result event");
  m.events.reserve(events);
  for (std::uint32_t i = 0; i < events; ++i) {
    ResultEventMsg e;
    e.stream = r.str();
    e.tuple = decode_tuple(r);
    e.ingest_ns = r.u64();
    m.events.push_back(std::move(e));
  }
  r.done();
  return m;
}

Frame encode_watermark(const WatermarkMsg& m) {
  Writer w;
  w.i64(m.watermark);
  encode_floors(w, m.floors);
  return finish(FrameType::kWatermark, std::move(w));
}

WatermarkMsg decode_watermark(const Frame& f) {
  auto r = open(f, FrameType::kWatermark);
  WatermarkMsg m;
  m.watermark = r.i64();
  m.floors = decode_floors(r);
  r.done();
  return m;
}

Frame encode_flush(const FlushMsg& m) {
  Writer w;
  w.u64(m.seq);
  encode_floors(w, m.floors);
  return finish(FrameType::kFlush, std::move(w));
}

FlushMsg decode_flush(const Frame& f) {
  auto r = open(f, FrameType::kFlush);
  FlushMsg m;
  m.seq = r.u64();
  m.floors = decode_floors(r);
  r.done();
  return m;
}

Frame encode_flush_ack(const FlushAckMsg& m) {
  Writer w;
  w.u64(m.seq);
  return finish(FrameType::kFlushAck, std::move(w));
}

FlushAckMsg decode_flush_ack(const Frame& f) {
  auto r = open(f, FrameType::kFlushAck);
  FlushAckMsg m;
  m.seq = r.u64();
  r.done();
  return m;
}

Frame encode_migrate_out(const MigrateOutMsg& m) {
  Writer w;
  encode_node_id(w, m.engine);
  w.u8(m.keep);
  return finish(FrameType::kMigrateOut, std::move(w));
}

MigrateOutMsg decode_migrate_out(const Frame& f) {
  auto r = open(f, FrameType::kMigrateOut);
  MigrateOutMsg m;
  m.engine = decode_node_id(r);
  m.keep = r.u8();
  r.done();
  return m;
}

Frame encode_state_handoff(const StateHandoffMsg& m) {
  Writer w;
  encode_node_id(w, m.engine);
  w.u32(static_cast<std::uint32_t>(m.units.size()));
  for (const auto& u : m.units) encode_unit_state(w, u);
  return finish(FrameType::kStateHandoff, std::move(w));
}

StateHandoffMsg decode_state_handoff(const Frame& f) {
  auto r = open(f, FrameType::kStateHandoff);
  StateHandoffMsg m;
  m.engine = decode_node_id(r);
  const std::uint32_t units = r.u32();
  check_count(units, r.remaining(), "handoff unit");
  m.units.reserve(units);
  for (std::uint32_t i = 0; i < units; ++i) {
    m.units.push_back(decode_unit_state(r));
  }
  r.done();
  return m;
}

Frame encode_migrate_in(const MigrateInMsg& m) {
  Writer w;
  encode_node_id(w, m.engine);
  w.u32(static_cast<std::uint32_t>(m.units.size()));
  for (const auto& u : m.units) encode_deploy_payload(w, u);
  w.u32(static_cast<std::uint32_t>(m.state.size()));
  for (const auto& u : m.state) encode_unit_state(w, u);
  w.u64(m.exec_seq);
  return finish(FrameType::kMigrateIn, std::move(w));
}

MigrateInMsg decode_migrate_in(const Frame& f) {
  auto r = open(f, FrameType::kMigrateIn);
  MigrateInMsg m;
  m.engine = decode_node_id(r);
  const std::uint32_t units = r.u32();
  check_count(units, r.remaining(), "migrate-in unit");
  m.units.reserve(units);
  for (std::uint32_t i = 0; i < units; ++i) {
    m.units.push_back(decode_deploy_payload(r));
  }
  const std::uint32_t states = r.u32();
  check_count(states, r.remaining(), "migrate-in state");
  m.state.reserve(states);
  for (std::uint32_t i = 0; i < states; ++i) {
    m.state.push_back(decode_unit_state(r));
  }
  m.exec_seq = r.u64();
  r.done();
  return m;
}

Frame encode_migrate_ack(const MigrateAckMsg& m) {
  Writer w;
  encode_node_id(w, m.engine);
  return finish(FrameType::kMigrateAck, std::move(w));
}

MigrateAckMsg decode_migrate_ack(const Frame& f) {
  auto r = open(f, FrameType::kMigrateAck);
  MigrateAckMsg m;
  m.engine = decode_node_id(r);
  r.done();
  return m;
}

Frame encode_traffic_request() {
  return Frame{FrameType::kTrafficRequest, {}};
}

Frame encode_traffic_report(const TrafficReportMsg& m) {
  Writer w;
  encode_traffic(w, m.traffic);
  w.u64(m.peer_frames);
  w.u64(m.peer_bytes);
  return finish(FrameType::kTrafficReport, std::move(w));
}

TrafficReportMsg decode_traffic_report(const Frame& f) {
  auto r = open(f, FrameType::kTrafficReport);
  TrafficReportMsg m;
  m.traffic = decode_traffic(r);
  m.peer_frames = r.u64();
  m.peer_bytes = r.u64();
  r.done();
  return m;
}

Frame encode_error(const ErrorMsg& m) {
  Writer w;
  w.str(m.message);
  return finish(FrameType::kError, std::move(w));
}

ErrorMsg decode_error(const Frame& f) {
  auto r = open(f, FrameType::kError);
  ErrorMsg m;
  m.message = r.str();
  r.done();
  return m;
}

Frame encode_bye() { return Frame{FrameType::kBye, {}}; }

namespace {

void encode_histogram_snapshot(Writer& w, const obs::HistogramSnapshot& h) {
  w.u64(h.count);
  w.u64(h.sum);
  w.u32(static_cast<std::uint32_t>(h.buckets.size()));
  for (const auto& [bucket, n] : h.buckets) {
    w.u16(bucket);
    w.u64(n);
  }
}

[[nodiscard]] obs::HistogramSnapshot decode_histogram_snapshot(Reader& r) {
  obs::HistogramSnapshot h;
  h.count = r.u64();
  h.sum = r.u64();
  const std::uint32_t buckets = r.u32();
  check_count(buckets, r.remaining(), "histogram bucket");
  h.buckets.reserve(buckets);
  std::uint32_t prev = 0;
  for (std::uint32_t i = 0; i < buckets; ++i) {
    const std::uint16_t bucket = r.u16();
    if (bucket >= obs::kBucketCount ||
        (i != 0 && bucket <= prev)) {
      throw Error{"wire: histogram buckets not strictly ascending in range"};
    }
    prev = bucket;
    h.buckets.emplace_back(bucket, r.u64());
  }
  return h;
}

void encode_metrics_snapshot(Writer& w, const obs::MetricsSnapshot& m) {
  w.u32(static_cast<std::uint32_t>(m.counters.size()));
  for (const auto& [name, v] : m.counters) {
    w.str(name);
    w.u64(v);
  }
  w.u32(static_cast<std::uint32_t>(m.gauges.size()));
  for (const auto& [name, v] : m.gauges) {
    w.str(name);
    w.f64(v);
  }
  w.u32(static_cast<std::uint32_t>(m.histograms.size()));
  for (const auto& [name, h] : m.histograms) {
    w.str(name);
    encode_histogram_snapshot(w, h);
  }
}

[[nodiscard]] obs::MetricsSnapshot decode_metrics_snapshot(Reader& r) {
  obs::MetricsSnapshot m;
  const std::uint32_t counters = r.u32();
  check_count(counters, r.remaining(), "metric counter");
  m.counters.reserve(counters);
  for (std::uint32_t i = 0; i < counters; ++i) {
    auto name = r.str();
    m.counters.emplace_back(std::move(name), r.u64());
  }
  const std::uint32_t gauges = r.u32();
  check_count(gauges, r.remaining(), "metric gauge");
  m.gauges.reserve(gauges);
  for (std::uint32_t i = 0; i < gauges; ++i) {
    auto name = r.str();
    m.gauges.emplace_back(std::move(name), r.f64());
  }
  const std::uint32_t histograms = r.u32();
  check_count(histograms, r.remaining(), "metric histogram");
  m.histograms.reserve(histograms);
  for (std::uint32_t i = 0; i < histograms; ++i) {
    auto name = r.str();
    m.histograms.emplace_back(std::move(name), decode_histogram_snapshot(r));
  }
  return m;
}

void encode_span(Writer& w, const obs::CollectedSpan& s) {
  w.str(s.name);
  w.str(s.cat);
  w.u64(s.start_ns);
  w.u64(s.dur_ns);
  w.u64(s.arg);
  w.u32(s.tid);
  w.u8(s.instant ? 1 : 0);
  // pid is assigned driver-side from the owning channel's worker index;
  // it does not travel.
}

[[nodiscard]] obs::CollectedSpan decode_span(Reader& r) {
  obs::CollectedSpan s;
  s.name = r.str();
  s.cat = r.str();
  s.start_ns = r.u64();
  s.dur_ns = r.u64();
  s.arg = r.u64();
  s.tid = r.u32();
  s.instant = r.u8() != 0;
  return s;
}

}  // namespace

Frame encode_stats_sample(const StatsSampleMsg& m) {
  Writer w;
  w.u16(m.version);
  w.u32(m.worker_index);
  w.i64(m.now_ms);
  encode_metrics_snapshot(w, m.metrics);
  w.u32(static_cast<std::uint32_t>(m.spans.size()));
  for (const auto& s : m.spans) encode_span(w, s);
  return finish(FrameType::kStatsSample, std::move(w));
}

StatsSampleMsg decode_stats_sample(const Frame& f) {
  auto r = open(f, FrameType::kStatsSample);
  StatsSampleMsg m;
  m.version = r.u16();
  if (m.version != StatsSampleMsg::kVersion) {
    throw Error{"wire: unsupported stats-sample version " +
                std::to_string(m.version)};
  }
  m.worker_index = r.u32();
  m.now_ms = r.i64();
  m.metrics = decode_metrics_snapshot(r);
  const std::uint32_t spans = r.u32();
  check_count(spans, r.remaining(), "trace span");
  m.spans.reserve(spans);
  for (std::uint32_t i = 0; i < spans; ++i) m.spans.push_back(decode_span(r));
  r.done();
  return m;
}

Frame encode_peer_table(const PeerTableMsg& m) {
  Writer w;
  w.u16(m.version);
  w.u32(static_cast<std::uint32_t>(m.endpoints.size()));
  for (const auto& e : m.endpoints) w.str(e);
  return finish(FrameType::kPeerTable, std::move(w));
}

PeerTableMsg decode_peer_table(const Frame& f) {
  auto r = open(f, FrameType::kPeerTable);
  PeerTableMsg m;
  m.version = r.u16();
  if (m.version != PeerTableMsg::kVersion) {
    throw Error{"wire: unsupported peer-table version " +
                std::to_string(m.version)};
  }
  const std::uint32_t count = r.u32();
  check_count(count, r.remaining(), "peer endpoint");
  m.endpoints.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) m.endpoints.push_back(r.str());
  r.done();
  return m;
}

Frame encode_route_decision(const RouteDecisionMsg& m) {
  Writer w;
  w.u64(m.job);
  w.u64(m.ingest_ns);
  w.u32(static_cast<std::uint32_t>(m.targets.size()));
  for (const auto& t : m.targets) {
    encode_node_id(w, t.engine);
    w.u32(t.worker);
    w.u64(t.seq);
    w.u32(static_cast<std::uint32_t>(t.rows.size()));
    for (const std::uint32_t row : t.rows) w.u32(row);
  }
  return finish(FrameType::kRouteDecision, std::move(w));
}

RouteDecisionMsg decode_route_decision(const Frame& f) {
  auto r = open(f, FrameType::kRouteDecision);
  RouteDecisionMsg m;
  m.job = r.u64();
  m.ingest_ns = r.u64();
  const std::uint32_t targets = r.u32();
  check_count(targets, r.remaining(), "route target");
  m.targets.reserve(targets);
  for (std::uint32_t i = 0; i < targets; ++i) {
    RouteDecisionMsg::Target t;
    t.engine = decode_node_id(r);
    t.worker = r.u32();
    t.seq = r.u64();
    const std::uint32_t rows = r.u32();
    check_count(rows, r.remaining(), "route target row");
    t.rows.reserve(rows);
    for (std::uint32_t j = 0; j < rows; ++j) t.rows.push_back(r.u32());
    m.targets.push_back(std::move(t));
  }
  r.done();
  return m;
}

Frame encode_peer_hello(const PeerHelloMsg& m) {
  Writer w;
  w.u16(m.protocol);
  w.u32(m.worker_index);
  return finish(FrameType::kPeerHello, std::move(w));
}

PeerHelloMsg decode_peer_hello(const Frame& f) {
  auto r = open(f, FrameType::kPeerHello);
  PeerHelloMsg m;
  m.protocol = r.u16();
  m.worker_index = r.u32();
  r.done();
  return m;
}

Frame encode_peer_hello_ack(const PeerHelloAckMsg& m) {
  Writer w;
  w.u32(m.worker_index);
  return finish(FrameType::kPeerHelloAck, std::move(w));
}

PeerHelloAckMsg decode_peer_hello_ack(const Frame& f) {
  auto r = open(f, FrameType::kPeerHelloAck);
  PeerHelloAckMsg m;
  m.worker_index = r.u32();
  r.done();
  return m;
}

Frame encode_heartbeat(const HeartbeatMsg& m) {
  Writer w;
  w.u8(m.probe);
  return finish(FrameType::kHeartbeat, std::move(w));
}

HeartbeatMsg decode_heartbeat(const Frame& f) {
  auto r = open(f, FrameType::kHeartbeat);
  HeartbeatMsg m;
  m.probe = r.u8();
  r.done();
  return m;
}

Frame encode_peer_down(const PeerDownMsg& m) {
  Writer w;
  w.u32(m.from_worker);
  w.u32(m.to_worker);
  w.str(m.reason);
  return finish(FrameType::kPeerDown, std::move(w));
}

PeerDownMsg decode_peer_down(const Frame& f) {
  auto r = open(f, FrameType::kPeerDown);
  PeerDownMsg m;
  m.from_worker = r.u32();
  m.to_worker = r.u32();
  m.reason = r.str();
  r.done();
  return m;
}

Frame encode_seq_gap(const SeqGapMsg& m) {
  Writer w;
  w.u32(m.worker_index);
  encode_floors(w, m.missing);
  return finish(FrameType::kSeqGap, std::move(w));
}

SeqGapMsg decode_seq_gap(const Frame& f) {
  auto r = open(f, FrameType::kSeqGap);
  SeqGapMsg m;
  m.worker_index = r.u32();
  m.missing = decode_floors(r);
  r.done();
  return m;
}

}  // namespace cosmos::wire
