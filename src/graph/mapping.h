// Graph mapping — Algorithm 2 of the paper.
//
// Maps the query graph onto the network graph: n-vertices are pinned to the
// network vertex representing their node (network constraint), q-vertices
// are placed greedily in descending weight order, then iteratively refined
// by gain-driven remapping (Kernighan–Lin flavoured: the best move is taken
// even when its gain is negative, which lets the search climb out of local
// minima; the best mapping seen is restored at the start of each outer
// round).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "graph/network_graph.h"
#include "graph/query_graph.h"

namespace cosmos::graph {

struct MappingParams {
  /// Load-imbalance slack (Eqn 3.1). The paper uses 0.1.
  double alpha = 0.1;
  /// Cap on outer refinement rounds (the paper runs until minWEC stops
  /// improving; this bounds pathological cases).
  std::size_t max_outer_rounds = 16;
  /// Skip refinement entirely => the paper's "Greedy" baseline.
  bool refine = true;
};

struct MappingResult {
  /// assignment[qi] = network vertex hosting query-graph vertex qi.
  std::vector<NetworkGraph::VertexIndex> assignment;
  double wec = 0.0;
  std::size_t outer_rounds = 0;
  std::size_t moves = 0;
  /// False when the greedy phase had to violate the load constraint
  /// (finding a feasible mapping is NP-complete; the algorithm does not
  /// guarantee one — Section 3.5).
  bool load_feasible = true;
};

/// Weighted Edge Cut (Eqn 3.2) of an assignment.
[[nodiscard]] double weighted_edge_cut(
    const QueryGraph& qg, const NetworkGraph& ng,
    std::span<const NetworkGraph::VertexIndex> assignment);

/// Per-assignable-vertex load totals of an assignment.
[[nodiscard]] std::vector<double> load_per_vertex(
    const QueryGraph& qg, const NetworkGraph& ng,
    std::span<const NetworkGraph::VertexIndex> assignment);

/// Load cap of each network vertex: (1+alpha) * c_j * Wq / Wn (Eqn 3.1).
[[nodiscard]] std::vector<double> load_caps(const QueryGraph& qg,
                                            const NetworkGraph& ng,
                                            double alpha);

/// Pin target of an n-vertex: the assignable vertex for its cluster (clu)
/// or the anchor vertex for its node. Throws std::invalid_argument if the
/// network graph has no vertex for it.
[[nodiscard]] NetworkGraph::VertexIndex pinned_target(const QueryVertex& v,
                                                      const NetworkGraph& ng);

/// Runs Algorithm 2. `rng` only breaks ties deterministically.
[[nodiscard]] MappingResult map_query_graph(const QueryGraph& qg,
                                            const NetworkGraph& ng,
                                            const MappingParams& params,
                                            Rng& rng);

/// WEC reduction achieved by remapping `vertex` from its current target to
/// `to` (positive = improvement). Used by Algorithm 3's benefit computation.
[[nodiscard]] double remap_gain(
    const QueryGraph& qg, const NetworkGraph& ng,
    std::span<const NetworkGraph::VertexIndex> assignment,
    QueryGraph::VertexIndex vertex, NetworkGraph::VertexIndex to);

/// Greedy placement of a single new q-vertex given an existing assignment
/// (used by online insertion, Section 3.6): the feasible target minimizing
/// the WEC increase, or the minimum-violation target if none is feasible.
[[nodiscard]] NetworkGraph::VertexIndex place_one(
    const QueryGraph& qg, const NetworkGraph& ng,
    std::span<const NetworkGraph::VertexIndex> assignment,
    QueryGraph::VertexIndex vertex, std::span<const double> load,
    std::span<const double> caps);

}  // namespace cosmos::graph
