#include "stream/schema.h"

#include <stdexcept>
#include <unordered_set>

namespace cosmos::stream {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  std::unordered_set<std::string> seen;
  for (const auto& f : fields_) {
    if (!seen.insert(f.name).second) {
      throw std::invalid_argument{"Schema: duplicate field " + f.name};
    }
  }
}

std::optional<std::size_t> Schema::index_of(
    const std::string& name) const noexcept {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

Schema Schema::join(const Schema& left, const std::string& left_alias,
                    const Schema& right, const std::string& right_alias) {
  std::vector<Field> fields;
  fields.reserve(left.size() + right.size());
  for (const auto& f : left.fields()) {
    fields.push_back({left_alias + "." + f.name, f.type});
  }
  for (const auto& f : right.fields()) {
    fields.push_back({right_alias + "." + f.name, f.type});
  }
  return Schema{std::move(fields)};
}

}  // namespace cosmos::stream
