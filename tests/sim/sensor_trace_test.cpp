#include "sim/sensor_trace.h"

#include <gtest/gtest.h>

namespace cosmos::sim {
namespace {

TEST(SensorTrace, SchemaShape) {
  const auto s = sensor_schema();
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(s.index_of("snowHeight").has_value());
  EXPECT_TRUE(s.index_of("timestamp").has_value());
  EXPECT_EQ(station_stream_name(0), "Station1");
  EXPECT_EQ(station_stream_name(4), "Station5");
}

TEST(SensorTrace, CountAndOrdering) {
  SensorTraceParams p;
  p.stations = 3;
  p.readings_per_station = 20;
  Rng rng{1};
  const auto trace = make_sensor_trace(p, rng);
  EXPECT_EQ(trace.size(), 60u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].tuple.ts, trace[i - 1].tuple.ts);  // global order
  }
}

TEST(SensorTrace, ValuesPlausible) {
  SensorTraceParams p;
  p.stations = 2;
  p.readings_per_station = 100;
  Rng rng{2};
  for (const auto& r : make_sensor_trace(p, rng)) {
    EXPECT_LT(r.station, 2u);
    EXPECT_GE(r.tuple.at(0).as_double(), 0.0);  // snowHeight never negative
    EXPECT_EQ(r.tuple.at(3).as_int(), r.tuple.ts);  // explicit ts column
  }
}

TEST(SensorTrace, AutocorrelatedSeries) {
  // Consecutive readings of a station differ by at most the drift step.
  SensorTraceParams p;
  p.stations = 1;
  p.readings_per_station = 50;
  p.snow_drift = 1.5;
  Rng rng{3};
  const auto trace = make_sensor_trace(p, rng);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double delta = std::abs(trace[i].tuple.at(0).as_double() -
                                  trace[i - 1].tuple.at(0).as_double());
    EXPECT_LE(delta, p.snow_drift + 1e-9);
  }
}

}  // namespace
}  // namespace cosmos::sim
