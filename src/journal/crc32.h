// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte ranges.
// Every journal record travels framed as [len][crc][body]; the checksum is
// what lets recovery tell a torn tail (partial final write) from a corrupted
// record (bit rot, truncated overwrite) without trusting the length prefix.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cosmos::journal {

/// One-shot checksum of `size` bytes starting at `data`.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

/// Incremental form: feed `crc32_update` the previous return value (seed with
/// `kCrc32Seed`) and finish with `crc32_finish`.
inline constexpr std::uint32_t kCrc32Seed = 0xFFFFFFFFu;
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state,
                                         const std::uint8_t* data,
                                         std::size_t size);
[[nodiscard]] constexpr std::uint32_t crc32_finish(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

}  // namespace cosmos::journal
