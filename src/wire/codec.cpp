#include "wire/codec.h"

#include <bit>
#include <cstring>

namespace cosmos::wire {
namespace {

constexpr std::size_t kMaxPredicateDepth = 64;
/// Sanity caps on decoded element counts: each element costs at least one
/// byte on the wire, so any count exceeding the remaining payload bytes is
/// provably corrupt — reject before reserving memory for it.
void check_count(std::uint64_t count, std::size_t remaining,
                 const char* what) {
  if (count > remaining) {
    throw Error{std::string{"wire: implausible "} + what + " count " +
                std::to_string(count)};
  }
}

stream::PredicatePtr decode_predicate_rec(Reader& r, std::size_t depth);

}  // namespace

const char* to_string(FrameType type) noexcept {
  switch (type) {
    case FrameType::kHello: return "Hello";
    case FrameType::kHelloAck: return "HelloAck";
    case FrameType::kTopology: return "Topology";
    case FrameType::kRegisterStream: return "RegisterStream";
    case FrameType::kSubscribe: return "Subscribe";
    case FrameType::kDeployUnit: return "DeployUnit";
    case FrameType::kMatchRequest: return "MatchRequest";
    case FrameType::kMatchResponse: return "MatchResponse";
    case FrameType::kExecute: return "Execute";
    case FrameType::kResult: return "Result";
    case FrameType::kWatermark: return "Watermark";
    case FrameType::kFlush: return "Flush";
    case FrameType::kFlushAck: return "FlushAck";
    case FrameType::kMigrateOut: return "MigrateOut";
    case FrameType::kStateHandoff: return "StateHandoff";
    case FrameType::kMigrateIn: return "MigrateIn";
    case FrameType::kMigrateAck: return "MigrateAck";
    case FrameType::kTrafficRequest: return "TrafficRequest";
    case FrameType::kTrafficReport: return "TrafficReport";
    case FrameType::kError: return "Error";
    case FrameType::kBye: return "Bye";
    case FrameType::kStatsSample: return "StatsSample";
    case FrameType::kPeerTable: return "PeerTable";
    case FrameType::kRouteDecision: return "RouteDecision";
    case FrameType::kPeerHello: return "PeerHello";
    case FrameType::kHeartbeat: return "Heartbeat";
    case FrameType::kPeerHelloAck: return "PeerHelloAck";
    case FrameType::kPeerDown: return "PeerDown";
    case FrameType::kSeqGap: return "SeqGap";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Writer / Reader

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(const std::string& s) {
  if (s.size() > kMaxPayloadBytes) {
    throw Error{"wire: string too long to encode"};
  }
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Reader::need(std::size_t n) const {
  if (size_ - pos_ < n) {
    throw Error{"wire: truncated payload (need " + std::to_string(n) +
                " bytes, have " + std::to_string(size_ - pos_) + ")"};
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

void Reader::done() const {
  if (pos_ != size_) {
    throw Error{"wire: " + std::to_string(size_ - pos_) +
                " trailing bytes after payload"};
  }
}

// ---------------------------------------------------------------------------
// Frame envelope

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxPayloadBytes) {
    throw Error{"wire: frame payload too large"};
  }
  Writer w;
  w.u32(kMagic);
  w.u16(kProtocolVersion);
  w.u16(static_cast<std::uint16_t>(frame.type));
  w.u32(static_cast<std::uint32_t>(frame.payload.size()));
  auto buf = w.take();
  buf.insert(buf.end(), frame.payload.begin(), frame.payload.end());
  return buf;
}

std::uint32_t decode_frame_header(const std::uint8_t (&header)[12],
                                  FrameType& type) {
  Reader r{header, kFrameHeaderBytes};
  if (const std::uint32_t magic = r.u32(); magic != kMagic) {
    throw Error{"wire: bad frame magic 0x" + std::to_string(magic) +
                " (not a cosmos peer?)"};
  }
  if (const std::uint16_t version = r.u16(); version != kProtocolVersion) {
    throw Error{"wire: protocol version mismatch (peer speaks v" +
                std::to_string(version) + ", this build speaks v" +
                std::to_string(kProtocolVersion) + ")"};
  }
  const std::uint16_t raw_type = r.u16();
  if (raw_type < static_cast<std::uint16_t>(FrameType::kHello) ||
      raw_type > static_cast<std::uint16_t>(FrameType::kSeqGap)) {
    throw Error{"wire: unknown frame type " + std::to_string(raw_type)};
  }
  type = static_cast<FrameType>(raw_type);
  const std::uint32_t len = r.u32();
  if (len > kMaxPayloadBytes) {
    throw Error{"wire: frame payload length " + std::to_string(len) +
                " exceeds cap"};
  }
  return len;
}

// ---------------------------------------------------------------------------
// Values / tuples / schemas

void encode_value(Writer& w, const stream::Value& v) {
  switch (v.type()) {
    case stream::ValueType::kInt:
      w.u8(0);
      w.i64(v.as_int());
      return;
    case stream::ValueType::kDouble:
      w.u8(1);
      w.f64(v.as_double());
      return;
    case stream::ValueType::kString:
      w.u8(2);
      w.str(v.as_string());
      return;
  }
}

stream::Value decode_value(Reader& r) {
  switch (r.u8()) {
    case 0: return stream::Value{r.i64()};
    case 1: return stream::Value{r.f64()};
    case 2: return stream::Value{r.str()};
    default: throw Error{"wire: unknown Value tag"};
  }
}

void encode_tuple(Writer& w, const stream::Tuple& t) {
  w.i64(t.ts);
  w.u32(static_cast<std::uint32_t>(t.values.size()));
  for (const auto& v : t.values) encode_value(w, v);
}

stream::Tuple decode_tuple(Reader& r) {
  stream::Tuple t;
  t.ts = r.i64();
  const std::uint32_t n = r.u32();
  check_count(n, r.remaining(), "tuple value");
  t.values.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) t.values.push_back(decode_value(r));
  return t;
}

void encode_schema(Writer& w, const stream::Schema& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  for (const auto& f : s.fields()) {
    w.str(f.name);
    w.u8(static_cast<std::uint8_t>(f.type));
  }
}

stream::Schema decode_schema(Reader& r) {
  const std::uint32_t n = r.u32();
  check_count(n, r.remaining(), "schema field");
  std::vector<stream::Field> fields;
  fields.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    stream::Field f;
    f.name = r.str();
    const std::uint8_t t = r.u8();
    if (t > 2) throw Error{"wire: unknown ValueType tag"};
    f.type = static_cast<stream::ValueType>(t);
    fields.push_back(std::move(f));
  }
  return stream::Schema{std::move(fields)};
}

void encode_window(Writer& w, const stream::WindowSpec& ws) {
  w.u8(static_cast<std::uint8_t>(ws.kind));
  w.i64(ws.range_ms);
}

stream::WindowSpec decode_window(Reader& r) {
  const std::uint8_t kind = r.u8();
  if (kind > 2) throw Error{"wire: unknown WindowSpec kind"};
  stream::WindowSpec ws;
  ws.kind = static_cast<stream::WindowSpec::Kind>(kind);
  ws.range_ms = r.i64();
  return ws;
}

void encode_field_ref(Writer& w, const stream::FieldRef& f) {
  w.str(f.alias);
  w.str(f.field);
}

stream::FieldRef decode_field_ref(Reader& r) {
  stream::FieldRef f;
  f.alias = r.str();
  f.field = r.str();
  return f;
}

// ---------------------------------------------------------------------------
// Predicates

void encode_predicate(Writer& w, const stream::PredicatePtr& p) {
  using K = stream::Predicate::Kind;
  w.u8(static_cast<std::uint8_t>(p->kind()));
  switch (p->kind()) {
    case K::kTrue:
      return;
    case K::kCompareConst: {
      const auto& cc = static_cast<const stream::CompareConst&>(*p);
      encode_field_ref(w, cc.lhs());
      w.u8(static_cast<std::uint8_t>(cc.op()));
      encode_value(w, cc.rhs());
      return;
    }
    case K::kCompareField: {
      const auto& cf = static_cast<const stream::CompareField&>(*p);
      encode_field_ref(w, cf.lhs());
      w.u8(static_cast<std::uint8_t>(cf.op()));
      encode_field_ref(w, cf.rhs());
      return;
    }
    case K::kTimeBand: {
      const auto& tb = static_cast<const stream::TimeBand&>(*p);
      encode_field_ref(w, tb.newer());
      encode_field_ref(w, tb.older());
      w.i64(tb.band_ms());
      return;
    }
    case K::kAnd:
    case K::kOr: {
      const auto& bj = static_cast<const stream::BoolJunction&>(*p);
      w.u32(static_cast<std::uint32_t>(bj.children().size()));
      for (const auto& c : bj.children()) encode_predicate(w, c);
      return;
    }
    case K::kNot: {
      const auto& np = static_cast<const stream::NotPredicate&>(*p);
      encode_predicate(w, np.child());
      return;
    }
  }
}

namespace {

stream::CmpOp decode_cmp_op(Reader& r) {
  const std::uint8_t op = r.u8();
  if (op > static_cast<std::uint8_t>(stream::CmpOp::kNe)) {
    throw Error{"wire: unknown CmpOp tag"};
  }
  return static_cast<stream::CmpOp>(op);
}

stream::PredicatePtr decode_predicate_rec(Reader& r, std::size_t depth) {
  using K = stream::Predicate::Kind;
  if (depth > kMaxPredicateDepth) {
    throw Error{"wire: predicate tree deeper than " +
                std::to_string(kMaxPredicateDepth)};
  }
  const std::uint8_t kind = r.u8();
  switch (static_cast<K>(kind)) {
    case K::kTrue:
      return stream::Predicate::always_true();
    case K::kCompareConst: {
      auto lhs = decode_field_ref(r);
      const auto op = decode_cmp_op(r);
      return stream::Predicate::cmp(std::move(lhs), op, decode_value(r));
    }
    case K::kCompareField: {
      auto lhs = decode_field_ref(r);
      const auto op = decode_cmp_op(r);
      return stream::Predicate::cmp(std::move(lhs), op, decode_field_ref(r));
    }
    case K::kTimeBand: {
      auto newer = decode_field_ref(r);
      auto older = decode_field_ref(r);
      return stream::Predicate::time_band(std::move(newer), std::move(older),
                                          r.i64());
    }
    case K::kAnd:
    case K::kOr: {
      const std::uint32_t n = r.u32();
      check_count(n, r.remaining(), "junction child");
      std::vector<stream::PredicatePtr> children;
      children.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        children.push_back(decode_predicate_rec(r, depth + 1));
      }
      return static_cast<K>(kind) == K::kAnd
                 ? stream::Predicate::conj(std::move(children))
                 : stream::Predicate::disj(std::move(children));
    }
    case K::kNot:
      return stream::Predicate::negate(decode_predicate_rec(r, depth + 1));
  }
  throw Error{"wire: unknown Predicate kind tag"};
}

}  // namespace

stream::PredicatePtr decode_predicate(Reader& r) {
  return decode_predicate_rec(r, 0);
}

// ---------------------------------------------------------------------------
// Query specs / subscriptions

void encode_query_spec(Writer& w, const query::QuerySpec& spec) {
  w.u32(spec.id.value());
  w.u32(spec.proxy.value());
  w.u32(static_cast<std::uint32_t>(spec.sources.size()));
  for (const auto& s : spec.sources) {
    w.str(s.stream);
    w.str(s.alias);
    encode_window(w, s.window);
  }
  w.u8(spec.select_all ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(spec.select.size()));
  for (const auto& item : spec.select) {
    w.str(item.alias);
    w.str(item.field);
  }
  encode_predicate(w, spec.where);
  w.str(spec.text);
}

query::QuerySpec decode_query_spec(Reader& r) {
  query::QuerySpec spec;
  spec.id = QueryId{r.u32()};
  spec.proxy = NodeId{r.u32()};
  const std::uint32_t sources = r.u32();
  check_count(sources, r.remaining(), "query source");
  spec.sources.reserve(sources);
  for (std::uint32_t i = 0; i < sources; ++i) {
    query::SourceRef s;
    s.stream = r.str();
    s.alias = r.str();
    s.window = decode_window(r);
    spec.sources.push_back(std::move(s));
  }
  spec.select_all = r.u8() != 0;
  const std::uint32_t selects = r.u32();
  check_count(selects, r.remaining(), "select item");
  spec.select.reserve(selects);
  for (std::uint32_t i = 0; i < selects; ++i) {
    query::SelectItem item;
    item.alias = r.str();
    item.field = r.str();
    spec.select.push_back(std::move(item));
  }
  spec.where = decode_predicate(r);
  spec.text = r.str();
  return spec;
}

void encode_subscription(Writer& w, const pubsub::Subscription& sub) {
  w.u32(sub.id.value());
  w.u32(sub.subscriber.value());
  w.u32(static_cast<std::uint32_t>(sub.streams.size()));
  for (const auto& s : sub.streams) w.str(s);
  w.u32(static_cast<std::uint32_t>(sub.projection.size()));
  for (const auto& a : sub.projection) w.str(a);
  encode_predicate(w, sub.filter);
}

pubsub::Subscription decode_subscription(Reader& r) {
  pubsub::Subscription sub;
  sub.id = SubscriptionId{r.u32()};
  sub.subscriber = NodeId{r.u32()};
  const std::uint32_t streams = r.u32();
  check_count(streams, r.remaining(), "subscription stream");
  for (std::uint32_t i = 0; i < streams; ++i) sub.streams.insert(r.str());
  const std::uint32_t attrs = r.u32();
  check_count(attrs, r.remaining(), "subscription attribute");
  for (std::uint32_t i = 0; i < attrs; ++i) sub.projection.insert(r.str());
  sub.filter = decode_predicate(r);
  return sub;
}

// ---------------------------------------------------------------------------
// Tuple batches

void encode_batch(Writer& w, const runtime::TupleBatch& batch) {
  w.str(batch.stream());
  const std::size_t rows = batch.size();
  const std::size_t width = batch.width();
  w.u32(static_cast<std::uint32_t>(rows));
  w.u32(static_cast<std::uint32_t>(width));
  const stream::Timestamp* ts = batch.ts_data();
  for (std::size_t i = 0; i < rows; ++i) w.i64(ts[i]);
  const stream::Value* values = batch.values_data();
  for (std::size_t i = 0; i < rows * width; ++i) encode_value(w, values[i]);
}

runtime::TupleBatch decode_batch(Reader& r) {
  runtime::TupleBatch batch{r.str()};
  const std::uint32_t rows = r.u32();
  const std::uint32_t width = r.u32();
  check_count(rows, r.remaining(), "batch row");
  if (width != 0) check_count(width, r.remaining(), "batch column");
  std::vector<stream::Timestamp> ts(rows);
  for (std::uint32_t i = 0; i < rows; ++i) ts[i] = r.i64();
  std::vector<stream::Value> row;
  for (std::uint32_t i = 0; i < rows; ++i) {
    row.clear();
    row.reserve(width);
    for (std::uint32_t c = 0; c < width; ++c) row.push_back(decode_value(r));
    batch.push_row(ts[i], std::move(row));
  }
  return batch;
}

// ---------------------------------------------------------------------------
// Traffic stats

void encode_traffic(Writer& w, const pubsub::TrafficStats& t) {
  w.f64(t.bytes);
  w.f64(t.weighted_cost);
  w.u64(t.messages_sent);
  w.u32(static_cast<std::uint32_t>(t.links.size()));
  for (const auto& [link, lt] : t.links) {
    w.u32(link.first.value());
    w.u32(link.second.value());
    w.f64(lt.bytes);
    w.f64(lt.weighted_cost);
    w.u64(lt.messages_sent);
  }
}

pubsub::TrafficStats decode_traffic(Reader& r) {
  pubsub::TrafficStats t;
  t.bytes = r.f64();
  t.weighted_cost = r.f64();
  t.messages_sent = static_cast<std::size_t>(r.u64());
  const std::uint32_t links = r.u32();
  check_count(links, r.remaining(), "traffic link");
  for (std::uint32_t i = 0; i < links; ++i) {
    const NodeId from{r.u32()};
    const NodeId to{r.u32()};
    pubsub::LinkTraffic lt;
    lt.bytes = r.f64();
    lt.weighted_cost = r.f64();
    lt.messages_sent = static_cast<std::size_t>(r.u64());
    t.links.emplace(std::make_pair(from, to), lt);
  }
  return t;
}

// ---------------------------------------------------------------------------
// Join state

void encode_join_state(Writer& w,
                       const std::vector<stream::WindowJoinOp::State>& joins) {
  w.u32(static_cast<std::uint32_t>(joins.size()));
  for (const auto& j : joins) {
    w.i64(j.watermark);
    w.u32(static_cast<std::uint32_t>(j.left.size()));
    for (const auto& t : j.left) encode_tuple(w, t);
    w.u32(static_cast<std::uint32_t>(j.right.size()));
    for (const auto& t : j.right) encode_tuple(w, t);
  }
}

std::vector<stream::WindowJoinOp::State> decode_join_state(Reader& r) {
  const std::uint32_t joins = r.u32();
  check_count(joins, r.remaining(), "join state");
  std::vector<stream::WindowJoinOp::State> out;
  out.reserve(joins);
  for (std::uint32_t i = 0; i < joins; ++i) {
    stream::WindowJoinOp::State s;
    s.watermark = r.i64();
    const std::uint32_t left = r.u32();
    check_count(left, r.remaining(), "join left tuple");
    s.left.reserve(left);
    for (std::uint32_t j = 0; j < left; ++j) s.left.push_back(decode_tuple(r));
    const std::uint32_t right = r.u32();
    check_count(right, r.remaining(), "join right tuple");
    s.right.reserve(right);
    for (std::uint32_t j = 0; j < right; ++j) {
      s.right.push_back(decode_tuple(r));
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t serialized_state_bytes(
    const std::vector<stream::WindowJoinOp::State>& joins) {
  Writer w;
  encode_join_state(w, joins);
  return w.size();
}

}  // namespace cosmos::wire
