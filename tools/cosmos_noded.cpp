// cosmos_noded: one federation worker process. Binds a listener, serves
// exactly one driver session (Hello ... Bye) and exits — process lifetime
// is session lifetime, which keeps supervision trivial (the driver spawns
// one daemon per worker per run and reaps it afterwards). The listener
// stays open for the whole session: peer workers dial it for worker-to-
// worker execute shipping, including freshly respawned workers mid-run.
//
// Usage: cosmos_noded --listen unix:/tmp/worker0.sock
//        cosmos_noded --listen tcp:127.0.0.1:0
//
// Chaos knobs (deterministic fault injection, see src/fault/fault.h):
//   --fault-driver <spec>  fault schedule for the driver channel
//   --fault-peer <spec>    fault schedule for every outbound peer link
//
// Prints "COSMOS_NODED_READY <endpoint>" on stdout once the listener is
// bound (with the resolved port for tcp:...:0), then blocks in accept.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "fault/fault.h"
#include "node/serve.h"
#include "wire/socket.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --listen <unix:/path | tcp:host:port>"
               " [--fault-driver <spec>] [--fault-peer <spec>]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen;
  std::string fault_driver;
  std::string fault_peer;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      listen = argv[++i];
    } else if (std::strcmp(argv[i], "--fault-driver") == 0 && i + 1 < argc) {
      fault_driver = argv[++i];
    } else if (std::strcmp(argv[i], "--fault-peer") == 0 && i + 1 < argc) {
      fault_peer = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (listen.empty()) return usage(argv[0]);

  try {
    cosmos::node::NodeServer::Options options;
    if (!fault_driver.empty()) {
      options.driver_fault = cosmos::fault::FaultPlan::parse(fault_driver);
    }
    if (!fault_peer.empty()) {
      options.peer_fault = cosmos::fault::FaultPlan::parse(fault_peer);
    }
    cosmos::wire::Listener listener{cosmos::wire::Endpoint::parse(listen)};
    std::printf("COSMOS_NODED_READY %s\n",
                listener.endpoint().to_string().c_str());
    std::fflush(stdout);
    cosmos::node::NodeServer server{listener, std::move(options)};
    return server.run() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cosmos_noded: %s\n", e.what());
    return 1;
  }
}
