// Batch-path and hash-join coverage for the streaming operators: the four
// execution shapes of WindowJoinOp — {scalar, batch} x {hash index, scan
// probe} — must emit identical output sequences over randomized workloads,
// batch filters/projections must equal their scalar counterparts, and
// watermark-driven pruning must expire both windows even when one side
// goes idle.
#include "stream/operators.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "runtime/tuple_batch.h"

namespace cosmos::stream {
namespace {

std::string fmt(const Tuple& t) {
  std::string out = std::to_string(t.ts);
  for (const auto& v : t.values) out += "|" + v.to_string();
  return out;
}

std::vector<std::string> flatten(const runtime::TupleBatch& b) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < b.size(); ++i) out.push_back(fmt(b.row(i)));
  return out;
}

TEST(FilterOpBatch, MatchesScalarPath) {
  const Schema s{{{"v", ValueType::kInt}}};
  std::vector<std::string> scalar_out;
  FilterOp scalar{"S", &s, Predicate::cmp({"S", "v"}, CmpOp::kGt, Value{2}),
                  [&](const Tuple& t) { scalar_out.push_back(fmt(t)); }};
  FilterOp batch{"S", &s, Predicate::cmp({"S", "v"}, CmpOp::kGt, Value{2}),
                 [](const Tuple&) {}};

  runtime::TupleBatch b{"S"};
  for (int i = 0; i < 8; ++i) {
    const Tuple t{i, {Value{i % 5}}};
    scalar.push(t);
    b.push_back(t);
  }
  std::vector<std::uint32_t> sel;
  batch.push_batch(b, nullptr, sel);
  EXPECT_EQ(batch.seen(), scalar.seen());
  EXPECT_EQ(batch.passed(), scalar.passed());
  std::vector<std::string> batch_out;
  for (const auto r : sel) batch_out.push_back(fmt(b.row(r)));
  EXPECT_EQ(batch_out, scalar_out);
}

TEST(ProjectOpBatch, MatchesScalarAndReadsVirtualTimestamp) {
  // Lifted schema: {v, ts}; keep = {ts, v} with column 1 virtual.
  std::vector<std::string> scalar_out;
  ProjectOp scalar{{1, 0},
                   [&](const Tuple& t) { scalar_out.push_back(fmt(t)); },
                   1};
  ProjectOp batch{{1, 0}, [](const Tuple&) {}, 1};

  runtime::TupleBatch raw{"S"};  // raw rows: just {v}
  for (int i = 0; i < 5; ++i) {
    const Tuple r{100 + i, {Value{i}}};
    raw.push_back(r);
    // Scalar path sees the physically lifted tuple.
    scalar.push(Tuple{r.ts, {Value{i}, Value{r.ts}}});
  }
  runtime::TupleBatch out{"S"};
  batch.push_batch(raw, nullptr, out);
  EXPECT_EQ(flatten(out), scalar_out);

  // Selection subset.
  out.clear();
  const std::vector<std::uint32_t> sel{1, 3};
  batch.push_batch(raw, &sel, out);
  EXPECT_EQ(flatten(out),
            (std::vector<std::string>{scalar_out[1], scalar_out[3]}));
}

struct JoinHarness {
  Schema left{{{"k", ValueType::kInt},
               {"w", ValueType::kDouble},
               {"L.timestamp", ValueType::kInt}}};
  Schema right{{{"j", ValueType::kInt},
                {"u", ValueType::kDouble},
                {"R.timestamp", ValueType::kInt}}};

  PredicatePtr equi_pred() {
    return Predicate::conj(
        {Predicate::cmp(FieldRef{"L", "k"}, CmpOp::kEq, FieldRef{"R", "j"}),
         Predicate::cmp(FieldRef{"L", "w"}, CmpOp::kGt, FieldRef{"R", "u"})});
  }

  Tuple mk(Rng& rng, Timestamp ts) {
    return Tuple{ts,
                 {Value{rng.next_range(0, 6)},
                  Value{rng.next_double(-3.0, 3.0)}, Value{ts}}};
  }
};

TEST(WindowJoinOpHash, FourExecutionShapesAgree) {
  JoinHarness h;
  // A globally ordered interleaving of left/right arrivals with enough key
  // collisions to join often.
  struct Arrival {
    bool left;
    Tuple t;
  };
  for (const std::uint64_t seed : {1ull, 7ull, 99ull}) {
    Rng rng{seed};
    std::vector<Arrival> arrivals;
    Timestamp ts = 0;
    for (int i = 0; i < 200; ++i) {
      ts += static_cast<Timestamp>(rng.next_below(30));
      arrivals.push_back({rng.next_bool(0.5), h.mk(rng, ts)});
    }
    const auto lw = WindowSpec::range_millis(200);
    const auto rw = WindowSpec::range_millis(350);

    // scalar x {hash, scan}
    std::vector<std::string> out_scalar_hash;
    std::vector<std::string> out_scalar_scan;
    WindowJoinOp j_hash{{"L", &h.left, lw},
                        {"R", &h.right, rw},
                        h.equi_pred(),
                        [&](const Tuple& t) {
                          out_scalar_hash.push_back(fmt(t));
                        },
                        WindowJoinOp::Options{true}};
    WindowJoinOp j_scan{{"L", &h.left, lw},
                        {"R", &h.right, rw},
                        h.equi_pred(),
                        [&](const Tuple& t) {
                          out_scalar_scan.push_back(fmt(t));
                        },
                        WindowJoinOp::Options{false}};
    EXPECT_EQ(j_hash.equi_key_count(), 1u);
    EXPECT_EQ(j_scan.equi_key_count(), 1u);
    for (const auto& a : arrivals) {
      if (a.left) {
        j_hash.push_left(a.t);
        j_scan.push_left(a.t);
      } else {
        j_hash.push_right(a.t);
        j_scan.push_right(a.t);
      }
    }
    ASSERT_EQ(out_scalar_hash, out_scalar_scan) << "seed " << seed;
    EXPECT_GT(out_scalar_hash.size(), 0u) << "seed " << seed;
    EXPECT_EQ(j_hash.emitted(), j_scan.emitted());
    EXPECT_EQ(j_hash.left_state_size(), j_scan.left_state_size());
    EXPECT_EQ(j_hash.right_state_size(), j_scan.right_state_size());

    // batch x {hash, scan}: replay the same arrivals as maximal same-side
    // run batches (the driver's chunk shape).
    for (const bool use_hash : {true, false}) {
      std::vector<std::string> out_batch;
      WindowJoinOp j{{"L", &h.left, lw},
                     {"R", &h.right, rw},
                     h.equi_pred(),
                     [](const Tuple&) {},
                     WindowJoinOp::Options{use_hash}};
      runtime::TupleBatch run{"run"};
      bool run_left = arrivals.front().left;
      const auto flush = [&] {
        if (run.empty()) return;
        runtime::TupleBatch out{"out"};
        if (run_left) {
          j.push_batch_left(run, nullptr, /*lift_append_ts=*/false, out);
        } else {
          j.push_batch_right(run, nullptr, /*lift_append_ts=*/false, out);
        }
        for (const auto& line : flatten(out)) out_batch.push_back(line);
        run.clear();
      };
      for (const auto& a : arrivals) {
        if (a.left != run_left) {
          flush();
          run_left = a.left;
        }
        run.push_back(a.t);
      }
      flush();
      ASSERT_EQ(out_batch, out_scalar_hash)
          << "seed " << seed << " use_hash " << use_hash;
    }
  }
}

TEST(WindowJoinOpHash, CrossTypeNumericKeysMatch) {
  // int 3 on one side, double 3.0 on the other: Value equality is numeric
  // cross-type, so the hash index must bucket them together.
  const Schema ls{{{"k", ValueType::kInt}}};
  const Schema rs{{{"j", ValueType::kDouble}}};
  std::vector<std::string> out;
  WindowJoinOp j{{"L", &ls, WindowSpec::range_millis(100)},
                 {"R", &rs, WindowSpec::range_millis(100)},
                 Predicate::cmp(FieldRef{"L", "k"}, CmpOp::kEq,
                                FieldRef{"R", "j"}),
                 [&](const Tuple& t) { out.push_back(fmt(t)); }};
  ASSERT_EQ(j.equi_key_count(), 1u);
  j.push_left(Tuple{0, {Value{3}}});
  j.push_right(Tuple{1, {Value{3.0}}});
  j.push_right(Tuple{2, {Value{4.0}}});
  EXPECT_EQ(out, (std::vector<std::string>{"1|3|3.000000"}));
}

TEST(WindowJoinOpPrune, IdleOppositeSidePrunesOnWatermarkAdvance) {
  // Regression for the arrival-driven-only prune: a side that keeps
  // receiving tuples must expire its *own* window even when the other
  // side stays idle (join state feeds the migration cost model).
  const Schema ls{{{"a", ValueType::kInt}}};
  const Schema rs{{{"b", ValueType::kInt}}};
  WindowJoinOp j{{"L", &ls, WindowSpec::range_millis(50)},
                 {"R", &rs, WindowSpec::range_millis(50)},
                 Predicate::always_true(),
                 [](const Tuple&) {}};
  j.push_left(Tuple{0, {Value{1}}});
  j.push_left(Tuple{100, {Value{2}}});
  j.push_left(Tuple{200, {Value{3}}});
  // Only ts=200 is inside the 50ms window at watermark 200.
  EXPECT_EQ(j.left_state_size(), 1u);

  // And the explicit external-clock hook prunes without any arrival.
  j.advance_watermark(1'000);
  EXPECT_EQ(j.left_state_size(), 0u);
}

TEST(WindowJoinOpPrune, PrunedTuplesNoLongerJoin) {
  const Schema ls{{{"a", ValueType::kInt}}};
  const Schema rs{{{"b", ValueType::kInt}}};
  std::vector<std::string> out;
  WindowJoinOp j{{"L", &ls, WindowSpec::range_millis(50)},
                 {"R", &rs, WindowSpec::range_millis(50)},
                 Predicate::cmp(FieldRef{"L", "a"}, CmpOp::kEq,
                                FieldRef{"R", "b"}),
                 [&](const Tuple& t) { out.push_back(fmt(t)); }};
  j.push_left(Tuple{0, {Value{7}}});
  j.push_left(Tuple{100, {Value{7}}});
  j.push_right(Tuple{120, {Value{7}}});  // joins only the ts=100 left row
  EXPECT_EQ(out, (std::vector<std::string>{"120|7|7"}));
}

TEST(WindowJoinOpBatch, LiftAppendsTimestampColumn) {
  // Raw source rows lack the timestamp column; the join's fused lift must
  // produce the same outputs as scalar pushes of physically lifted tuples.
  const Schema ls{{{"v", ValueType::kInt}, {"L.timestamp", ValueType::kInt}}};
  const Schema rs{{{"u", ValueType::kInt}, {"R.timestamp", ValueType::kInt}}};
  const auto pred = Predicate::cmp(FieldRef{"", "v"}, CmpOp::kEq,
                                   FieldRef{"", "u"});
  std::vector<std::string> scalar_out;
  WindowJoinOp scalar{{"", &ls, WindowSpec::range_millis(100)},
                      {"", &rs, WindowSpec::range_millis(100)},
                      pred,
                      [&](const Tuple& t) { scalar_out.push_back(fmt(t)); }};
  scalar.push_left(Tuple{10, {Value{1}, Value{10}}});
  scalar.push_right(Tuple{20, {Value{1}, Value{20}}});

  WindowJoinOp batch{{"", &ls, WindowSpec::range_millis(100)},
                     {"", &rs, WindowSpec::range_millis(100)},
                     pred,
                     [](const Tuple&) {}};
  runtime::TupleBatch raw_l{"L"};
  raw_l.push_back(Tuple{10, {Value{1}}});
  runtime::TupleBatch raw_r{"R"};
  raw_r.push_back(Tuple{20, {Value{1}}});
  runtime::TupleBatch out{"out"};
  batch.push_batch_left(raw_l, nullptr, /*lift_append_ts=*/true, out);
  batch.push_batch_right(raw_r, nullptr, /*lift_append_ts=*/true, out);
  EXPECT_EQ(flatten(out), scalar_out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.row(0).values.size(), 4u);  // v, L.ts, u, R.ts
}

}  // namespace
}  // namespace cosmos::stream
