// Substream partitioning and query data-interest profiles.
//
// Section 3.2 / 3.8 of the paper: every stream is partitioned into
// substreams; a query's data interest is a bit vector over substreams, so
// overlap between two queries reduces to bit operations, and the only
// statistics a coordinator needs are per-substream data rates.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/bit_vector.h"
#include "common/ids.h"

namespace cosmos::query {

/// Global registry of substreams: rate and origin node of each.
class SubstreamSpace {
 public:
  SubstreamSpace() = default;
  /// `origin[i]` is the source node publishing substream i; `rate[i]` its
  /// data rate in bytes/second.
  SubstreamSpace(std::vector<NodeId> origin, std::vector<double> rate);

  [[nodiscard]] std::size_t size() const noexcept { return origin_.size(); }
  [[nodiscard]] NodeId origin(SubstreamId s) const {
    return origin_.at(s.value());
  }
  [[nodiscard]] double rate(SubstreamId s) const { return rate_.at(s.value()); }
  [[nodiscard]] std::span<const double> rates() const noexcept {
    return rate_;
  }
  void set_rate(SubstreamId s, double rate);

 private:
  std::vector<NodeId> origin_;
  std::vector<double> rate_;
};

/// A query's data interest plus derived quantities used by the optimizer.
struct InterestProfile {
  QueryId query;
  NodeId proxy;
  BitVector interest;      ///< one bit per substream
  double output_rate = 0;  ///< result-stream rate toward the proxy (bytes/s)
  double load = 0;         ///< CPU load estimate (capability units)
  double state_size = 1;   ///< operator state (for migration cost), bytes

  /// Total input rate = sum of selected substream rates.
  [[nodiscard]] double input_rate(const SubstreamSpace& space) const {
    return interest.weighted_count(space.rates());
  }
  /// Rate of data both profiles want (the paper's query-query edge weight).
  [[nodiscard]] double overlap_rate(const InterestProfile& other,
                                    const SubstreamSpace& space) const {
    return interest.weighted_intersection(other.interest, space.rates());
  }
  /// Per-source-node breakdown of this query's input rate.
  [[nodiscard]] std::vector<std::pair<NodeId, double>> rate_by_source(
      const SubstreamSpace& space) const;
};

/// The paper sets query load proportional to input stream rate; this is the
/// shared definition of the constant of proportionality.
inline constexpr double kLoadPerByteRate = 0.001;

/// Derives `load` from input rate (call after changing interest or rates).
void refresh_load(InterestProfile& p, const SubstreamSpace& space);

}  // namespace cosmos::query
