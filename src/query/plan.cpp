#include "query/plan.h"

#include <functional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "runtime/tuple_batch.h"

namespace cosmos::query {
namespace {

using stream::CompareConst;
using stream::CompareField;
using stream::FieldRef;
using stream::Predicate;
using stream::PredicatePtr;
using stream::Schema;
using stream::Tuple;

/// Rewrites FieldRef{alias, field} to FieldRef{"", "alias.field"} so a
/// predicate can run against a flattened (joined) schema. The "timestamp"
/// pseudo-field becomes the materialized "<alias>.timestamp" column.
FieldRef flatten_ref(const FieldRef& f) {
  if (f.alias.empty()) return f;
  return {"", f.alias + "." + f.field};
}

PredicatePtr flatten_predicate(const PredicatePtr& p) {
  switch (p->kind()) {
    case Predicate::Kind::kTrue:
      return p;
    case Predicate::Kind::kCompareConst: {
      const auto& cc = static_cast<const CompareConst&>(*p);
      return Predicate::cmp(flatten_ref(cc.lhs()), cc.op(), cc.rhs());
    }
    case Predicate::Kind::kCompareField: {
      const auto& cf = static_cast<const CompareField&>(*p);
      return Predicate::cmp(flatten_ref(cf.lhs()), cf.op(),
                            flatten_ref(cf.rhs()));
    }
    case Predicate::Kind::kTimeBand: {
      const auto& tb = static_cast<const stream::TimeBand&>(*p);
      return Predicate::time_band(flatten_ref(tb.newer()),
                                  flatten_ref(tb.older()), tb.band_ms());
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      const auto& bj = static_cast<const stream::BoolJunction&>(*p);
      std::vector<PredicatePtr> children;
      for (const auto& c : bj.children()) {
        children.push_back(flatten_predicate(c));
      }
      return p->kind() == Predicate::Kind::kAnd
                 ? Predicate::conj(std::move(children))
                 : Predicate::disj(std::move(children));
    }
    case Predicate::Kind::kNot: {
      const auto& np = static_cast<const stream::NotPredicate&>(*p);
      return Predicate::negate(flatten_predicate(np.child()));
    }
  }
  return p;
}

/// Aliases referenced by a leaf conjunct.
std::unordered_set<std::string> referenced_aliases(const PredicatePtr& p) {
  std::unordered_set<std::string> out;
  switch (p->kind()) {
    case Predicate::Kind::kCompareConst:
      out.insert(static_cast<const CompareConst&>(*p).lhs().alias);
      break;
    case Predicate::Kind::kCompareField: {
      const auto& cf = static_cast<const CompareField&>(*p);
      out.insert(cf.lhs().alias);
      out.insert(cf.rhs().alias);
      break;
    }
    case Predicate::Kind::kTimeBand: {
      const auto& tb = static_cast<const stream::TimeBand&>(*p);
      out.insert(tb.newer().alias);
      out.insert(tb.older().alias);
      break;
    }
    default:
      break;
  }
  return out;
}

/// Flattened per-alias schema: "<alias>.<field>" columns plus a
/// materialized "<alias>.timestamp" column (appended when absent).
Schema lift_schema(const Schema& raw, const std::string& alias,
                   bool& has_ts_column) {
  std::vector<stream::Field> fields;
  has_ts_column = false;
  for (const auto& f : raw.fields()) {
    fields.push_back({alias + "." + f.name, f.type});
    if (f.name == "timestamp") has_ts_column = true;
  }
  if (!has_ts_column) {
    fields.push_back({alias + ".timestamp", stream::ValueType::kInt});
  }
  return Schema{std::move(fields)};
}

Tuple lift_tuple(const Tuple& raw, bool has_ts_column) {
  Tuple out = raw;
  if (!has_ts_column) out.values.emplace_back(raw.ts);
  return out;
}

}  // namespace

struct CompiledQuery::Stage {
  std::unique_ptr<stream::FilterOp> filter;
  std::unique_ptr<stream::WindowJoinOp> join;
  std::unique_ptr<stream::ProjectOp> project;
  Schema schema;  // output schema of the stage (stable address for Bindings)
  // Batch-chain scratch. Engines execute single-threaded (pinned to one
  // runtime shard), and the chain is acyclic, so per-stage reuse is safe.
  runtime::TupleBatch batch_scratch;       ///< join/project output rows
  std::vector<std::uint32_t> sel_scratch;  ///< filter selection output
};

namespace {
/// One batch-chain hop: a batch plus the selected rows (nullptr = all).
using BatchSink =
    std::function<void(const runtime::TupleBatch&,
                       const std::vector<std::uint32_t>*)>;
}  // namespace

stream::Schema flattened_schema(const stream::Engine& engine,
                                const QuerySpec& spec) {
  Schema acc;
  for (std::size_t i = 0; i < spec.sources.size(); ++i) {
    bool has_ts = false;
    Schema lifted =
        lift_schema(engine.schema(spec.sources[i].stream),
                    spec.sources[i].alias, has_ts);
    if (i == 0) {
      acc = std::move(lifted);
    } else {
      std::vector<stream::Field> fields = acc.fields();
      for (const auto& f : lifted.fields()) fields.push_back(f);
      acc = Schema{std::move(fields)};
    }
  }
  return acc;
}

CompiledQuery::CompiledQuery(stream::Engine& engine, const QuerySpec& spec,
                             std::string result_stream)
    : engine_(engine), result_stream_(std::move(result_stream)) {
  validate(spec);

  std::vector<PredicatePtr> conjuncts;
  if (!stream::collect_conjuncts(spec.where, conjuncts)) {
    // Non-conjunctive WHERE: evaluate the whole tree in the residual stage.
    conjuncts.clear();
  }

  // Partition conjuncts: single-alias ones go below the join; the rest (and
  // a non-conjunctive WHERE) are re-checked after the last join.
  std::unordered_map<std::string, std::vector<PredicatePtr>> per_alias;
  std::vector<PredicatePtr> residual;
  if (conjuncts.empty() &&
      spec.where->kind() != Predicate::Kind::kTrue) {
    residual.push_back(spec.where);
  } else {
    for (const auto& c : conjuncts) {
      auto aliases = referenced_aliases(c);
      aliases.erase("");
      if (aliases.size() == 1) {
        per_alias[*aliases.begin()].push_back(c);
      } else {
        residual.push_back(c);
      }
    }
  }
  // Window constraints re-imposed on the final result: for every source
  // with a bounded window, require result_ts - source_ts <= extent. (For
  // two-way joins the join operator already enforces this; the residual
  // band makes left-deep cascades of 3+ sources window-correct too.)
  if (spec.sources.size() > 2) {
    for (const auto& s : spec.sources) {
      if (s.window.kind != stream::WindowSpec::Kind::kUnbounded) {
        residual.push_back(Predicate::time_band(
            FieldRef{"", "timestamp"}, FieldRef{s.alias, "timestamp"},
            s.window.extent_ms()));
      }
    }
  }

  // --- build stages back to front ---
  const Schema full_schema = flattened_schema(engine_, spec);

  // Final sink: projection then publish.
  std::vector<std::size_t> keep;
  std::vector<stream::Field> result_fields;
  if (spec.select_all) {
    for (std::size_t i = 0; i < full_schema.size(); ++i) {
      keep.push_back(i);
      result_fields.push_back(full_schema.field(i));
    }
  } else {
    for (const auto& item : spec.select) {
      if (item.is_wildcard()) {
        const std::string prefix = item.alias + ".";
        for (std::size_t i = 0; i < full_schema.size(); ++i) {
          if (full_schema.field(i).name.starts_with(prefix)) {
            keep.push_back(i);
            result_fields.push_back(full_schema.field(i));
          }
        }
      } else {
        const auto idx = full_schema.index_of(item.alias + "." + item.field);
        if (!idx) {
          throw std::invalid_argument{"CompiledQuery: unknown select column " +
                                      item.to_string()};
        }
        keep.push_back(*idx);
        result_fields.push_back(full_schema.field(*idx));
      }
    }
  }
  result_schema_ = Schema{std::move(result_fields)};
  engine_.register_stream(result_stream_, result_schema_);

  // Single-source plans run their batch chain directly over raw source
  // batches; the appended "<alias>.timestamp" column (when the raw schema
  // lacks one) is then virtual — operators read it from the row timestamp.
  const bool single_source = spec.sources.size() == 1;
  bool source0_has_ts = false;
  if (single_source) {
    (void)lift_schema(engine_.schema(spec.sources[0].stream),
                      spec.sources[0].alias, source0_has_ts);
  }
  const std::size_t post_join_virtual_ts =
      single_source && !source0_has_ts ? full_schema.size() - 1 : SIZE_MAX;

  auto& project_stage = *stages_.emplace_back(std::make_unique<Stage>());
  project_stage.batch_scratch = runtime::TupleBatch{result_stream_};
  project_stage.project = std::make_unique<stream::ProjectOp>(
      keep,
      [this](const Tuple& t) {
        ++emitted_;
        engine_.publish(result_stream_, t);
      },
      post_join_virtual_ts);
  // One batch-chain hop through a stage's FilterOp: refine the selection
  // in the stage scratch and forward survivors (shared by the residual
  // and per-alias filter wiring below).
  const auto make_filter_hop = [](Stage* stp, BatchSink down) {
    return [stp, down = std::move(down)](
               const runtime::TupleBatch& b,
               const std::vector<std::uint32_t>* sel) {
      stp->sel_scratch.clear();
      stp->filter->push_batch(b, sel, stp->sel_scratch);
      if (stp->sel_scratch.empty()) return;
      down(b, &stp->sel_scratch);
    };
  };

  stream::Sink after_joins = [op = project_stage.project.get()](
                                 const Tuple& t) { op->push(t); };
  BatchSink after_joins_batch =
      [this, ps = &project_stage](const runtime::TupleBatch& b,
                                  const std::vector<std::uint32_t>* sel) {
        ps->batch_scratch.clear();
        ps->project->push_batch(b, sel, ps->batch_scratch);
        if (ps->batch_scratch.empty()) return;
        emitted_ += ps->batch_scratch.size();
        engine_.publish_batch(result_stream_, ps->batch_scratch);
      };

  if (!residual.empty()) {
    std::vector<PredicatePtr> flat;
    for (const auto& p : residual) flat.push_back(flatten_predicate(p));
    auto& st = *stages_.emplace_back(std::make_unique<Stage>());
    st.schema = full_schema;
    st.filter = std::make_unique<stream::FilterOp>(
        "", &st.schema, Predicate::conj(std::move(flat)),
        std::move(after_joins), post_join_virtual_ts);
    after_joins = [op = st.filter.get()](const Tuple& t) { op->push(t); };
    after_joins_batch = make_filter_hop(&st, std::move(after_joins_batch));
  }

  // Per-source entry pipelines (lift -> filter) feeding the join cascade.
  struct SourceEntry {
    Schema lifted;
    bool has_ts = false;
    stream::Sink entry;     // receives *lifted* tuples (scalar chain)
    BatchSink batch_entry;  // receives *raw* source batches + selection
  };
  std::vector<SourceEntry> entries(spec.sources.size());

  if (spec.sources.size() == 1) {
    // No join: source filter feeds the residual/projection directly (the
    // batch chain reads the appended timestamp column virtually).
    auto& e = entries[0];
    e.lifted = lift_schema(engine_.schema(spec.sources[0].stream),
                           spec.sources[0].alias, e.has_ts);
    e.entry = after_joins;
    e.batch_entry = after_joins_batch;
  } else {
    // Left-deep cascade: acc = src0 ⋈ src1 ⋈ ... Window of the accumulated
    // side is the widest of its constituents (exact for 2-way; residual
    // bands fix 3+-way).
    std::vector<Schema> acc_schema(spec.sources.size());
    for (std::size_t i = 0; i < spec.sources.size(); ++i) {
      bool has_ts = false;
      entries[i].lifted = lift_schema(engine_.schema(spec.sources[i].stream),
                                      spec.sources[i].alias, has_ts);
      entries[i].has_ts = has_ts;
      acc_schema[i] = i == 0 ? entries[0].lifted
                             : Schema::join(acc_schema[i - 1], "",
                                            entries[i].lifted, "");
    }
    // Schema::join with empty aliases would prefix "."; build manually.
    acc_schema[0] = entries[0].lifted;
    for (std::size_t i = 1; i < spec.sources.size(); ++i) {
      std::vector<stream::Field> fs = acc_schema[i - 1].fields();
      for (const auto& f : entries[i].lifted.fields()) fs.push_back(f);
      acc_schema[i] = Schema{std::move(fs)};
    }

    std::unordered_set<std::string> acc_aliases{spec.sources[0].alias};
    stream::Sink downstream = std::move(after_joins);
    BatchSink downstream_batch = std::move(after_joins_batch);
    // Build joins from the last to the first so each join's sink exists.
    std::vector<stream::WindowJoinOp*> join_ops(spec.sources.size(), nullptr);
    std::vector<Stage*> join_stage(spec.sources.size(), nullptr);
    // Chain after each join — where its output batches go (shared by the
    // join's left feed and its source's right feed).
    std::vector<BatchSink> join_down(spec.sources.size());
    // One batch-chain hop feeding a join side: collect the join's output
    // rows into the stage scratch, forward non-empty results downstream.
    const auto make_feed = [](stream::WindowJoinOp* op, Stage* stp,
                              BatchSink down, bool is_left, bool lift_ts) {
      return [op, stp, down = std::move(down), is_left, lift_ts](
                 const runtime::TupleBatch& b,
                 const std::vector<std::uint32_t>* sel) {
        stp->batch_scratch.clear();
        if (is_left) {
          op->push_batch_left(b, sel, lift_ts, stp->batch_scratch);
        } else {
          op->push_batch_right(b, sel, lift_ts, stp->batch_scratch);
        }
        if (!stp->batch_scratch.empty()) down(stp->batch_scratch, nullptr);
      };
    };
    for (std::size_t i = spec.sources.size() - 1; i >= 1; --i) {
      // Join predicate: conjuncts fully resolvable once source i arrives
      // (reference alias i and only aliases < i otherwise).
      std::unordered_set<std::string> available;
      for (std::size_t j = 0; j < i; ++j) {
        available.insert(spec.sources[j].alias);
      }
      std::vector<PredicatePtr> join_preds;
      for (const auto& c : conjuncts) {
        auto aliases = referenced_aliases(c);
        aliases.erase("");
        if (aliases.size() < 2) continue;
        if (!aliases.contains(spec.sources[i].alias)) continue;
        bool ok = true;
        for (const auto& a : aliases) {
          if (a != spec.sources[i].alias && !available.contains(a)) {
            ok = false;
          }
        }
        if (ok) join_preds.push_back(flatten_predicate(c));
      }

      auto& st = *stages_.emplace_back(std::make_unique<Stage>());
      st.schema = acc_schema[i - 1];
      // Accumulated side window: widest constituent window.
      stream::WindowSpec acc_window = spec.sources[0].window;
      for (std::size_t j = 1; j < i; ++j) {
        if (spec.sources[j].window.covers(acc_window)) {
          acc_window = spec.sources[j].window;
        }
      }
      auto& st_r = *stages_.emplace_back(std::make_unique<Stage>());
      st_r.schema = entries[i].lifted;
      st.join = std::make_unique<stream::WindowJoinOp>(
          stream::WindowJoinOp::Side{"", &st.schema, acc_window},
          stream::WindowJoinOp::Side{"", &st_r.schema,
                                     spec.sources[i].window},
          Predicate::conj(std::move(join_preds)), std::move(downstream));
      join_ops[i] = st.join.get();
      join_stage[i] = &st;
      join_down[i] = downstream_batch;
      downstream = [op = st.join.get()](const Tuple& t) { op->push_left(t); };
      // Interior left feeds carry join-output batches, which are already
      // physically lifted; only the raw source feeds lift.
      downstream_batch = make_feed(st.join.get(), &st,
                                   std::move(downstream_batch),
                                   /*is_left=*/true, /*lift_ts=*/false);
      if (i == 1) break;  // size_t underflow guard
    }
    entries[0].entry = std::move(downstream);
    entries[0].batch_entry =
        make_feed(join_ops[1], join_stage[1], join_down[1],
                  /*is_left=*/true, /*lift_ts=*/!entries[0].has_ts);
    for (std::size_t i = 1; i < spec.sources.size(); ++i) {
      entries[i].entry = [op = join_ops[i]](const Tuple& t) {
        op->push_right(t);
      };
      entries[i].batch_entry =
          make_feed(join_ops[i], join_stage[i], join_down[i],
                    /*is_left=*/false, /*lift_ts=*/!entries[i].has_ts);
    }
  }

  // A self-join (two sources on one stream) needs per-row interleaving of
  // the two taps, which batch-at-a-time delivery would reorder: such plans
  // keep scalar taps only.
  bool self_join = false;
  for (std::size_t i = 0; i < spec.sources.size() && !self_join; ++i) {
    for (std::size_t j = i + 1; j < spec.sources.size(); ++j) {
      if (spec.sources[i].stream == spec.sources[j].stream) self_join = true;
    }
  }

  // Attach source taps: engine tuple -> lift -> per-alias filter -> entry
  // (the batch leg filters raw batches first and lifts only survivors).
  for (std::size_t i = 0; i < spec.sources.size(); ++i) {
    const auto& src = spec.sources[i];
    stream::Sink into = entries[i].entry;
    BatchSink into_batch = entries[i].batch_entry;
    if (const auto it = per_alias.find(src.alias); it != per_alias.end()) {
      std::vector<PredicatePtr> flat;
      for (const auto& p : it->second) flat.push_back(flatten_predicate(p));
      auto& st = *stages_.emplace_back(std::make_unique<Stage>());
      st.schema = entries[i].lifted;
      st.filter = std::make_unique<stream::FilterOp>(
          "", &st.schema, Predicate::conj(std::move(flat)), std::move(into),
          entries[i].has_ts ? SIZE_MAX : entries[i].lifted.size() - 1);
      into = [op = st.filter.get()](const Tuple& t) { op->push(t); };
      into_batch = make_filter_hop(&st, std::move(into_batch));
    }
    const bool has_ts = entries[i].has_ts;
    stream::Engine::Tap scalar = [into = std::move(into),
                                  has_ts](const Tuple& t) {
      into(lift_tuple(t, has_ts));
    };
    const std::size_t tap =
        self_join
            ? engine_.attach(src.stream, std::move(scalar))
            : engine_.attach(
                  src.stream,
                  [into_batch = std::move(into_batch)](
                      const runtime::TupleBatch& b) { into_batch(b, nullptr); },
                  std::move(scalar));
    taps_.emplace_back(src.stream, tap);
  }
}

CompiledQuery::~CompiledQuery() {
  for (const auto& [name, tap] : taps_) engine_.detach(name, tap);
}

std::size_t CompiledQuery::state_tuples() const noexcept {
  std::size_t n = 0;
  for (const auto& stage : stages_) {
    if (stage->join) {
      n += stage->join->left_state_size() + stage->join->right_state_size();
    }
  }
  return n;
}

std::vector<stream::WindowJoinOp::State> CompiledQuery::export_join_state()
    const {
  std::vector<stream::WindowJoinOp::State> out;
  for (const auto& stage : stages_) {
    if (stage->join) out.push_back(stage->join->export_state());
  }
  return out;
}

void CompiledQuery::import_join_state(
    std::vector<stream::WindowJoinOp::State> joins) {
  std::vector<stream::WindowJoinOp*> ops;
  for (const auto& stage : stages_) {
    if (stage->join) ops.push_back(stage->join.get());
  }
  if (ops.size() != joins.size()) {
    throw std::invalid_argument{
        "CompiledQuery::import_join_state: plan has " +
        std::to_string(ops.size()) + " joins, snapshot has " +
        std::to_string(joins.size())};
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i]->import_state(std::move(joins[i]));
  }
}

void CompiledQuery::advance_watermark(stream::Timestamp watermark) {
  for (const auto& stage : stages_) {
    if (stage->join) stage->join->advance_watermark(watermark);
  }
}

stream::PredicatePtr make_split_predicate(const ResultSplit& split) {
  std::vector<PredicatePtr> conj;
  for (const auto& p : split.residual_filters) {
    conj.push_back(flatten_predicate(p));
  }
  for (const auto& band : split.window_bands) {
    conj.push_back(Predicate::time_band(
        FieldRef{"", "timestamp"},
        FieldRef{"", band.alias + ".timestamp"}, band.band_ms));
  }
  return Predicate::conj(std::move(conj));
}

std::vector<std::size_t> split_projection_indices(
    const ResultSplit& split, const stream::Schema& merged_schema) {
  std::vector<std::size_t> keep;
  if (split.select_all) {
    for (std::size_t i = 0; i < merged_schema.size(); ++i) keep.push_back(i);
    return keep;
  }
  for (const auto& item : split.select) {
    if (item.is_wildcard()) {
      const std::string prefix = item.alias + ".";
      for (std::size_t i = 0; i < merged_schema.size(); ++i) {
        if (merged_schema.field(i).name.starts_with(prefix)) {
          keep.push_back(i);
        }
      }
    } else {
      const auto idx = merged_schema.index_of(item.alias + "." + item.field);
      if (!idx) {
        throw std::invalid_argument{
            "split_projection_indices: merged stream lacks column " +
            item.to_string()};
      }
      keep.push_back(*idx);
    }
  }
  return keep;
}

}  // namespace cosmos::query
