#include "node/serve.h"

#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>
#include <vector>

#include "node/site.h"
#include "wire/channel.h"
#include "wire/messages.h"

namespace cosmos::node {
namespace {

/// Bounds a raw-socket read with SO_RCVTIMEO (0 clears the bound); a
/// timed-out recv fails with EAGAIN, which surfaces as a wire::Error.
void set_recv_timeout(const wire::Socket& sock, std::int64_t ms) {
  timeval tv{};
  tv.tv_sec = ms / 1'000;
  tv.tv_usec = (ms % 1'000) * 1'000;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

bool serve_connection(wire::Socket socket) {
  wire::FrameChannel channel{std::move(socket)};
  try {
    // The session opens with kHello: it carries the shard count the Site's
    // runtime should use and the emulated one-way delay this side applies
    // to its own outgoing frames.
    auto first = channel.recv();
    if (!first) return true;  // connected, then closed: nothing to serve
    const auto hello = wire::decode_hello(*first);
    channel.set_send_delay_ms(hello.send_delay_ms);
    // Symmetric liveness: this side also probes when send-idle and applies
    // the same silence deadline to the driver — a worker whose driver died
    // mid-session errors out within the deadline instead of lingering.
    channel.set_liveness(hello.heartbeat_every_ms, hello.liveness_deadline_ms);
    Site site{{hello.shards == 0 ? 1 : hello.shards, 64}};
    std::vector<wire::Frame> out;
    bool keep_going = site.handle(*first, out);
    for (auto& f : out) channel.send(std::move(f));
    while (keep_going) {
      auto frame = channel.recv();
      if (!frame) break;  // clean peer close
      out.clear();
      keep_going = site.handle(*frame, out);
      for (auto& f : out) channel.send(std::move(f));
    }
    channel.close();
    return true;
  } catch (const std::exception& e) {
    // Best effort: tell the driver why before tearing the session down. A
    // send failure here means the peer is already gone.
    try {
      channel.send(wire::encode_error({e.what()}));
    } catch (...) {
    }
    channel.close();
    return false;
  }
}

NodeServer::NodeServer(wire::Listener& listener, Options options)
    : listener_(listener), options_(std::move(options)) {}

NodeServer::~NodeServer() { shutdown(); }

bool NodeServer::run() {
  accept_thread_ = std::thread([this] { accept_loop(); });
  bool ok = true;
  {
    std::unique_lock lock{mu_};
    done_cv_.wait(lock, [&] { return driver_done_; });
    ok = driver_ok_;
  }
  shutdown();
  return ok;
}

void NodeServer::accept_loop() {
  while (true) {
    wire::Socket sock;
    try {
      sock = listener_.accept();
    } catch (const std::exception&) {
      return;  // listener closed: orderly shutdown
    }
    // First-frame handshake, read inline — but bounded: a dialer whose
    // hello was swallowed (SIGSTOP, an injected send partition) would
    // otherwise wedge this loop, and with it every later peer dial and the
    // final shutdown join, on a connection that will never speak.
    std::optional<wire::Frame> first;
    set_recv_timeout(sock, 2'000);
    try {
      first = wire::recv_frame(sock);
    } catch (const std::exception&) {
      continue;  // died (or stayed silent) mid-handshake: forget it
    }
    if (!first) continue;
    set_recv_timeout(sock, 0);
    if (first->type == wire::FrameType::kHello) {
      std::lock_guard lock{mu_};
      if (driver_started_ || shutting_down_) {
        try {
          wire::send_frame(sock,
                           wire::encode_error({"node: driver session "
                                               "already active"}));
        } catch (const std::exception&) {
        }
        continue;
      }
      driver_started_ = true;
      driver_thread_ = std::thread(
          [this, s = std::move(sock), f = std::move(*first)]() mutable {
            drive_session(std::move(s), std::move(f));
          });
    } else if (first->type == wire::FrameType::kPeerHello) {
      wire::PeerHelloMsg ph;
      try {
        ph = wire::decode_peer_hello(*first);
      } catch (const std::exception&) {
        continue;
      }
      if (ph.protocol != wire::kProtocolVersion) {
        try {
          wire::send_frame(
              sock, wire::encode_error(
                        {"node: peer protocol version mismatch: v" +
                         std::to_string(ph.protocol) + " vs v" +
                         std::to_string(wire::kProtocolVersion)}));
        } catch (const std::exception&) {
        }
        continue;
      }
      std::uint32_t self = 0;
      {
        std::lock_guard lock{mu_};
        if (shutting_down_) continue;
        self = worker_index_;
      }
      // Acknowledge before serving: connect() alone proves nothing (a
      // listener backlog accepts for a stopped process too); the ack is
      // what tells the dialer this worker actually serves. Sent before the
      // receive thread exists, so this is the socket's only writer here.
      try {
        wire::send_frame(sock, wire::encode_peer_hello_ack({self}));
      } catch (const std::exception&) {
        continue;
      }
      std::lock_guard lock{mu_};
      if (shutting_down_) continue;
      auto& slot = peer_ins_.emplace_back();
      slot.sock = std::move(sock);
      slot.th = std::thread([this, &slot] { peer_in_loop(slot.sock); });
    }
    // Any other first frame: drop the connection.
  }
}

void NodeServer::drive_session(wire::Socket sock, wire::Frame hello_frame) {
  bool ok = true;
  wire::FrameChannel* channel = nullptr;
  try {
    const auto hello = wire::decode_hello(hello_frame);
    worker_index_ = hello.worker_index;
    send_delay_ms_ = hello.send_delay_ms;
    heartbeat_every_ms_ = hello.heartbeat_every_ms;
    liveness_deadline_ms_ = hello.liveness_deadline_ms;
    auto ch = std::make_unique<wire::FrameChannel>(std::move(sock));
    channel = ch.get();
    channel->set_send_delay_ms(hello.send_delay_ms);
    channel->set_liveness(hello.heartbeat_every_ms,
                          hello.liveness_deadline_ms);
    if (!options_.driver_fault.empty()) {
      channel->set_fault(
          std::make_shared<fault::LinkFault>(options_.driver_fault));
    }
    auto site = std::make_unique<Site>(
        Site::Options{hello.shards == 0 ? 1 : hello.shards, 64});
    // Wire every callback before publishing the Site to the peer reader
    // threads: a peer execute must never find a half-initialized sink.
    site->set_emit([channel](wire::Frame f) { channel->send(std::move(f)); });
    site->set_peer_ship(
        [this](std::uint32_t w, wire::Frame f) { ship(w, std::move(f)); });
    site->set_peer_table_cb([this](wire::PeerTableMsg t) {
      std::lock_guard lock{mu_};
      table_ = std::move(t);
    });
    site->set_peer_traffic([this] { return peer_traffic(); });
    {
      std::lock_guard lock{mu_};
      driver_channel_ = std::move(ch);
      site_owned_ = std::move(site);
      site_ = site_owned_.get();
    }
    site_cv_.notify_all();
    std::vector<wire::Frame> out;  // stays empty: the emit sink is installed
    bool keep_going = site_->handle(hello_frame, out);
    while (keep_going) {
      auto frame = channel->recv();
      if (!frame) break;  // clean peer close
      keep_going = site_->handle(*frame, out);
    }
  } catch (const std::exception& e) {
    ok = false;
    if (channel != nullptr) {
      try {
        channel->send(wire::encode_error({e.what()}));
      } catch (...) {
      }
    }
  }
  // The channel and Site stay alive for shutdown(): peer reader threads
  // may still be inside apply_peer_execute / the emit sink until they are
  // joined there.
  std::lock_guard lock{mu_};
  driver_done_ = true;
  driver_ok_ = ok;
  done_cv_.notify_all();
}

Site* NodeServer::wait_site() {
  std::unique_lock lock{mu_};
  site_cv_.wait(lock, [&] { return site_ != nullptr || shutting_down_; });
  return shutting_down_ ? nullptr : site_;
}

void NodeServer::peer_in_loop(wire::Socket& sock) {
  try {
    while (auto frame = wire::recv_frame(sock)) {
      if (frame->type == wire::FrameType::kHeartbeat) {
        // Echo probes: the dialer's watchdog counts received frames, and
        // this echo is the only traffic it ever gets back — a stopped or
        // wedged receiver goes silent, which is how the dialer detects it.
        // Single-writer safe: the ack went out before this thread started.
        const auto hb = wire::decode_heartbeat(*frame);
        if (hb.probe != 0) wire::send_frame(sock, wire::encode_heartbeat({0}));
        continue;
      }
      if (frame->type != wire::FrameType::kExecute) {
        continue;  // peer links carry executes and heartbeats only
      }
      auto m = wire::decode_execute(*frame);
      Site* site = wait_site();
      if (site == nullptr) return;
      site->apply_peer_execute(std::move(m));
    }
  } catch (const std::exception&) {
    // A dying peer (or our own shutdown's socket shutdown) lands here; the
    // driver's recovery path owns the consequences.
  }
}

namespace {

/// Shared between dial_peer and its channel's reader thread: flipped when
/// the accept side's kPeerHelloAck arrives.
struct AckGate {
  std::mutex mu;
  std::condition_variable cv;
  bool acked = false;
};

}  // namespace

NodeServer::PeerOut NodeServer::dial_peer(std::uint32_t worker) {
  std::string endpoint;
  {
    std::lock_guard lock{mu_};
    if (worker < table_.endpoints.size()) endpoint = table_.endpoints[worker];
  }
  if (endpoint.empty()) return {};
  try {
    auto sock = wire::connect_to(wire::Endpoint::parse(endpoint), 5'000);
    PeerOut out;
    wire::FrameChannel::Options copts;
    copts.send_delay_ms = send_delay_ms_;
    copts.heartbeat_every_ms = heartbeat_every_ms_;
    copts.liveness_deadline_ms = liveness_deadline_ms_;
    if (!options_.peer_fault.empty()) {
      // One persistent schedule per destination (caller holds
      // peer_out_mu_): counters survive re-dials, so a partition does not
      // "heal" for one handshake frame on every reconnect.
      auto& fault = peer_faults_[worker];
      if (!fault) fault = std::make_shared<fault::LinkFault>(
          options_.peer_fault);
      copts.fault = fault;
    }
    out.ch = std::make_unique<wire::FrameChannel>(std::move(sock), copts);
    out.ch->send(
        wire::encode_peer_hello({wire::kProtocolVersion, worker_index_}));
    // The reader has two jobs: eager death detection — EOF flips `dead`
    // the moment the peer goes away, and the next ship() re-dials instead
    // of enqueueing into a channel whose sender would drop the frame — and
    // fielding the kPeerHelloAck / heartbeat echoes that feed the
    // channel's liveness watchdog.
    out.dead = std::make_shared<std::atomic<bool>>(false);
    auto gate = std::make_shared<AckGate>();
    out.ch->start_reader(
        [gate](wire::Frame f) {
          if (f.type == wire::FrameType::kPeerHelloAck) {
            std::lock_guard lock{gate->mu};
            gate->acked = true;
            gate->cv.notify_all();
          }
        },
        [flag = out.dead](const std::string&) { flag->store(true); });
    // Wait (bounded) for the ack: a listener backlog happily accepts
    // connections for a SIGSTOPped process, so connect() success proves
    // nothing about the peer actually serving. ship() holds the frame
    // loop while we wait, and nothing feeds our own serve-channel
    // watchdog while we are not reading — so both ship attempts together
    // must stay well under the liveness deadline, hence deadline/4 each.
    const std::int64_t budget =
        liveness_deadline_ms_ > 0
            ? std::max<std::int64_t>(liveness_deadline_ms_ / 4, 10)
            : 5'000;
    std::unique_lock lock{gate->mu};
    if (!gate->cv.wait_for(lock, std::chrono::milliseconds(budget),
                           [&] { return gate->acked; })) {
      lock.unlock();
      out.ch->close();
      return {};
    }
    return out;
  } catch (const std::exception&) {
    return {};
  }
}

void NodeServer::retire_peer_out(PeerOut& slot) {
  retired_peer_frames_ += slot.ch->frames_sent();
  retired_peer_bytes_ += slot.ch->bytes_sent();
  slot.ch->close();
  slot.ch.reset();
  slot.dead.reset();
}

void NodeServer::ship(std::uint32_t worker, wire::Frame frame) {
  std::lock_guard lock{peer_out_mu_};
  if (peer_down_.contains(worker)) return;  // the driver owns this traffic
  // One live attempt + one re-dial: a freshly respawned worker re-binds
  // the same endpoint, so the second attempt covers recovery. A frame
  // dropped in the death instant itself is re-sent by the driver's
  // data-log replay.
  std::string last_error = "peer link dial/handshake failed";
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto& slot = peer_out_[worker];
    if (slot.ch && slot.dead->load()) {
      if (const auto err = slot.ch->send_error(); !err.empty()) {
        last_error = err;
      }
      retire_peer_out(slot);
    }
    if (!slot.ch) {
      slot = dial_peer(worker);
      if (!slot.ch) continue;
    }
    try {
      slot.ch->send(frame);
      return;
    } catch (const std::exception& e) {
      last_error = e.what();
      retire_peer_out(slot);
    }
  }
  mark_peer_down(worker, last_error);
}

void NodeServer::mark_peer_down(std::uint32_t worker,
                                const std::string& reason) {
  if (!peer_down_.insert(worker).second) return;  // already reported
  wire::FrameChannel* driver = nullptr;
  {
    std::lock_guard lock{mu_};
    driver = driver_channel_.get();
  }
  if (driver == nullptr) return;
  try {
    driver->send(wire::encode_peer_down({worker_index_, worker, reason}));
  } catch (const std::exception&) {
    // Driver channel down too; that failure has its own owner.
  }
}

std::pair<std::uint64_t, std::uint64_t> NodeServer::peer_traffic() {
  std::lock_guard lock{peer_out_mu_};
  std::uint64_t frames = retired_peer_frames_;
  std::uint64_t bytes = retired_peer_bytes_;
  for (const auto& [w, slot] : peer_out_) {
    if (slot.ch) {
      frames += slot.ch->frames_sent();
      bytes += slot.ch->bytes_sent();
    }
  }
  return {frames, bytes};
}

void NodeServer::shutdown() {
  {
    std::lock_guard lock{mu_};
    if (shutting_down_) {
      // Re-entrant (run() then destructor): nothing left to tear down.
      return;
    }
    shutting_down_ = true;
    site_cv_.notify_all();
  }
  listener_.close();  // accept() throws, accept_loop returns
  if (accept_thread_.joinable()) accept_thread_.join();
  std::list<PeerIn> peers;
  std::thread driver;
  {
    std::lock_guard lock{mu_};
    for (auto& p : peer_ins_) p.sock.shutdown_both();
    peers = std::move(peer_ins_);  // list nodes survive the move; the
                                   // threads' &slot references stay valid
    driver = std::move(driver_thread_);
  }
  for (auto& p : peers) {
    if (p.th.joinable()) p.th.join();
  }
  if (driver.joinable()) driver.join();
  {
    std::lock_guard lock{peer_out_mu_};
    for (auto& [w, slot] : peer_out_) {
      if (slot.ch) slot.ch->close();
    }
    peer_out_.clear();
  }
  // Safe now: every thread that could touch the Site or the driver channel
  // has been joined. close() drains the channel's queued tail (final
  // results / stats sample) within its bounded deadline.
  std::lock_guard lock{mu_};
  site_ = nullptr;
  site_owned_.reset();
  if (driver_channel_) driver_channel_->close();
  driver_channel_.reset();
}

}  // namespace cosmos::node
