#include "query/containment.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace cosmos::query {
namespace {

using stream::CmpOp;
using stream::CompareConst;
using stream::CompareField;
using stream::FieldRef;
using stream::Predicate;
using stream::PredicatePtr;
using stream::TimeBand;

/// Canonical text for a predicate leaf; CompareField leaves are oriented so
/// the lexically-smaller side is on the left (a > b and b < a compare equal).
std::string canonical(const PredicatePtr& p) {
  if (p->kind() == Predicate::Kind::kCompareField) {
    const auto& cf = static_cast<const CompareField&>(*p);
    if (cf.rhs().to_string() < cf.lhs().to_string()) {
      return cf.rhs().to_string() + " " +
             stream::to_string(stream::flip(cf.op())) + " " +
             cf.lhs().to_string();
    }
  }
  return p->to_string();
}

/// Rewrites alias names in a predicate tree; unknown aliases pass through.
PredicatePtr rename_aliases(
    const PredicatePtr& p,
    const std::unordered_map<std::string, std::string>& map) {
  const auto rename = [&map](const FieldRef& f) {
    const auto it = map.find(f.alias);
    return it == map.end() ? f : FieldRef{it->second, f.field};
  };
  switch (p->kind()) {
    case Predicate::Kind::kTrue:
      return p;
    case Predicate::Kind::kCompareConst: {
      const auto& cc = static_cast<const CompareConst&>(*p);
      return Predicate::cmp(rename(cc.lhs()), cc.op(), cc.rhs());
    }
    case Predicate::Kind::kCompareField: {
      const auto& cf = static_cast<const CompareField&>(*p);
      return Predicate::cmp(rename(cf.lhs()), cf.op(), rename(cf.rhs()));
    }
    case Predicate::Kind::kTimeBand: {
      const auto& tb = static_cast<const TimeBand&>(*p);
      return Predicate::time_band(rename(tb.newer()), rename(tb.older()),
                                  tb.band_ms());
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      const auto& bj = static_cast<const stream::BoolJunction&>(*p);
      std::vector<PredicatePtr> children;
      children.reserve(bj.children().size());
      for (const auto& c : bj.children()) {
        children.push_back(rename_aliases(c, map));
      }
      return p->kind() == Predicate::Kind::kAnd
                 ? Predicate::conj(std::move(children))
                 : Predicate::disj(std::move(children));
    }
    case Predicate::Kind::kNot: {
      const auto& np = static_cast<const stream::NotPredicate&>(*p);
      return Predicate::negate(rename_aliases(np.child(), map));
    }
  }
  return p;
}

/// Conjuncts of q.where, or nullopt if the WHERE is not a pure conjunction.
std::optional<std::vector<PredicatePtr>> conjuncts_of(const QuerySpec& q) {
  std::vector<PredicatePtr> out;
  if (!stream::collect_conjuncts(q.where, out)) return std::nullopt;
  return out;
}

/// Alias map from b's aliases to a's, matching sources by stream name.
/// Requires each stream to appear at most once per query; nullopt otherwise
/// or when the stream sets differ.
std::optional<std::unordered_map<std::string, std::string>> alias_map_b_to_a(
    const QuerySpec& a, const QuerySpec& b) {
  if (a.sources.size() != b.sources.size()) return std::nullopt;
  std::unordered_map<std::string, std::string> stream_to_a_alias;
  for (const auto& s : a.sources) {
    if (!stream_to_a_alias.emplace(s.stream, s.alias).second) {
      return std::nullopt;  // repeated stream (self-join): out of scope
    }
  }
  std::unordered_map<std::string, std::string> map;
  std::unordered_set<std::string> b_streams;
  for (const auto& s : b.sources) {
    if (!b_streams.insert(s.stream).second) return std::nullopt;
    const auto it = stream_to_a_alias.find(s.stream);
    if (it == stream_to_a_alias.end()) return std::nullopt;
    map.emplace(s.alias, it->second);
  }
  return map;
}

/// True if the leaf references more than one alias (a join conjunct).
bool is_join_conjunct(const PredicatePtr& p) {
  if (p->kind() == Predicate::Kind::kCompareField) {
    const auto& cf = static_cast<const CompareField&>(*p);
    return cf.lhs().alias != cf.rhs().alias;
  }
  if (p->kind() == Predicate::Kind::kTimeBand) {
    const auto& tb = static_cast<const TimeBand&>(*p);
    return tb.newer().alias != tb.older().alias;
  }
  return false;
}

std::multiset<std::string> canonical_set(const std::vector<PredicatePtr>& v) {
  std::multiset<std::string> out;
  for (const auto& p : v) out.insert(canonical(p));
  return out;
}

/// Select list as a set of "alias.field" with "alias.*" wildcards expanded
/// lazily: wildcard is represented as "alias.*" and absorbs specific fields.
struct SelectSet {
  bool all = false;  // SELECT *
  std::set<std::string> wildcard_aliases;
  std::set<std::pair<std::string, std::string>> fields;  // (alias, field)

  void add(const SelectItem& item) {
    if (item.is_wildcard()) {
      wildcard_aliases.insert(item.alias);
    } else {
      fields.emplace(item.alias, item.field);
    }
  }
  [[nodiscard]] bool covers(const SelectSet& other) const {
    if (all) return true;
    if (other.all) return false;
    for (const auto& w : other.wildcard_aliases) {
      if (!wildcard_aliases.contains(w)) return false;
    }
    for (const auto& f : other.fields) {
      if (!wildcard_aliases.contains(f.first) && !fields.contains(f)) {
        return false;
      }
    }
    return true;
  }
};

SelectSet select_set(const QuerySpec& q,
                     const std::unordered_map<std::string, std::string>* map) {
  SelectSet s;
  s.all = q.select_all;
  for (const auto& item : q.select) {
    std::string alias = item.alias;
    if (map != nullptr) {
      const auto it = map->find(alias);
      if (it != map->end()) alias = it->second;
    }
    s.add({alias, item.field});
  }
  return s;
}

}  // namespace

stream::PredicatePtr rename_predicate_aliases(
    const stream::PredicatePtr& p,
    const std::unordered_map<std::string, std::string>& map) {
  return rename_aliases(p, map);
}

ResultSplit make_result_split(const QuerySpec& original,
                              const QuerySpec& merged) {
  if (!contains(merged, original)) {
    throw std::invalid_argument{
        "make_result_split: merged does not contain original"};
  }
  const auto map = alias_map_b_to_a(merged, original);  // original -> merged
  ResultSplit split;
  split.original = original.id;

  const auto merged_conj = conjuncts_of(merged);
  const auto orig_conj_raw = conjuncts_of(original);
  const auto merged_set = canonical_set(*merged_conj);
  for (const auto& p : *orig_conj_raw) {
    const auto renamed = rename_aliases(p, *map);
    if (!merged_set.contains(canonical(renamed))) {
      split.residual_filters.push_back(renamed);
    }
  }
  for (const auto& src : original.sources) {
    const auto it = map->find(src.alias);
    const SourceRef* m_src = merged.source_by_alias(it->second);
    if (m_src->window.extent_ms() > src.window.extent_ms()) {
      split.window_bands.push_back({it->second, src.window.extent_ms()});
    }
  }
  split.select_all = original.select_all;
  for (const auto& item : original.select) {
    const auto it = map->find(item.alias);
    split.select.push_back(
        {it == map->end() ? item.alias : it->second, item.field});
  }
  return split;
}

bool equivalent(const PredicatePtr& a, const PredicatePtr& b) {
  std::vector<PredicatePtr> ca, cb;
  if (stream::collect_conjuncts(a, ca) && stream::collect_conjuncts(b, cb)) {
    return canonical_set(ca) == canonical_set(cb);
  }
  return a->to_string() == b->to_string();
}

bool contains(const QuerySpec& sup, const QuerySpec& sub) {
  const auto map = alias_map_b_to_a(sup, sub);
  if (!map) return false;

  // Windows: sup must be at least as wide on every source.
  for (const auto& s_sub : sub.sources) {
    const auto it = map->find(s_sub.alias);
    const SourceRef* s_sup = sup.source_by_alias(it->second);
    if (s_sup == nullptr || !s_sup->window.covers(s_sub.window)) return false;
  }

  // Predicates: every sup conjunct must appear among sub's conjuncts
  // (sup is less restrictive).
  const auto sup_conj = conjuncts_of(sup);
  auto sub_conj_raw = conjuncts_of(sub);
  if (!sup_conj || !sub_conj_raw) return false;
  std::vector<PredicatePtr> sub_conj;
  sub_conj.reserve(sub_conj_raw->size());
  for (const auto& p : *sub_conj_raw) {
    sub_conj.push_back(rename_aliases(p, *map));
  }
  const auto sub_set = canonical_set(sub_conj);
  for (const auto& p : *sup_conj) {
    if (!sub_set.contains(canonical(p))) return false;
  }

  // Projection: sup must emit every column sub emits.
  return select_set(sup, nullptr).covers(select_set(sub, &*map));
}

std::optional<MergedQuery> merge_queries(const QuerySpec& a,
                                         const QuerySpec& b,
                                         QueryId merged_id) {
  const auto map = alias_map_b_to_a(a, b);
  if (!map) return std::nullopt;

  const auto a_conj = conjuncts_of(a);
  const auto b_conj_raw = conjuncts_of(b);
  if (!a_conj || !b_conj_raw) return std::nullopt;
  std::vector<PredicatePtr> b_conj;
  b_conj.reserve(b_conj_raw->size());
  for (const auto& p : *b_conj_raw) {
    b_conj.push_back(rename_aliases(p, *map));
  }

  // Join conjuncts must agree exactly; different join conditions mean the
  // results do not overlap structurally.
  std::vector<PredicatePtr> a_joins, b_joins;
  for (const auto& p : *a_conj) {
    if (is_join_conjunct(p)) a_joins.push_back(p);
  }
  for (const auto& p : b_conj) {
    if (is_join_conjunct(p)) b_joins.push_back(p);
  }
  if (canonical_set(a_joins) != canonical_set(b_joins)) return std::nullopt;

  // Common selection conjuncts stay in the merged query; the rest become
  // per-original residual filters.
  const auto b_set = canonical_set(b_conj);
  const auto a_set = canonical_set(*a_conj);
  std::vector<PredicatePtr> common, residual_a, residual_b;
  for (const auto& p : *a_conj) {
    if (b_set.contains(canonical(p))) {
      common.push_back(p);
    } else {
      residual_a.push_back(p);
    }
  }
  for (const auto& p : b_conj) {
    if (!a_set.contains(canonical(p))) residual_b.push_back(p);
  }

  MergedQuery out;
  out.merged.id = merged_id;
  out.merged.proxy = a.proxy;
  out.merged.where = stream::Predicate::conj(common);

  // Sources: wider window per stream; record bands for the narrower side.
  out.split_a.original = a.id;
  out.split_b.original = b.id;
  for (const auto& sa : a.sources) {
    const auto* sb = [&]() -> const SourceRef* {
      for (const auto& s : b.sources) {
        if (s.stream == sa.stream) return &s;
      }
      return nullptr;
    }();
    SourceRef merged_src = sa;
    merged_src.window =
        sa.window.covers(sb->window) ? sa.window : sb->window;
    out.merged.sources.push_back(merged_src);

    if (!sa.window.covers(sb->window) &&
        sa.window.extent_ms() < merged_src.window.extent_ms()) {
      out.split_a.window_bands.push_back({sa.alias, sa.window.extent_ms()});
    }
    if (!sb->window.covers(sa.window) &&
        sb->window.extent_ms() < merged_src.window.extent_ms()) {
      out.split_b.window_bands.push_back({sa.alias, sb->window.extent_ms()});
    }
  }

  out.split_a.residual_filters = std::move(residual_a);
  out.split_b.residual_filters = std::move(residual_b);
  out.split_a.select_all = a.select_all;
  out.split_a.select = a.select;
  out.split_b.select_all = b.select_all;
  for (const auto& item : b.select) {
    const auto it = map->find(item.alias);
    out.split_b.select.push_back(
        {it == map->end() ? item.alias : it->second, item.field});
  }

  // Merged projection: union of both select lists, plus the columns the
  // residual filters and window bands will need downstream.
  if (a.select_all || b.select_all) {
    out.merged.select_all = true;
  } else {
    SelectSet u = select_set(a, nullptr);
    const SelectSet sb_set = select_set(b, &*map);
    u.wildcard_aliases.insert(sb_set.wildcard_aliases.begin(),
                              sb_set.wildcard_aliases.end());
    u.fields.insert(sb_set.fields.begin(), sb_set.fields.end());

    const auto need_field = [&u](const FieldRef& f) {
      if (!f.alias.empty() && !u.wildcard_aliases.contains(f.alias)) {
        u.fields.emplace(f.alias, f.field);
      }
    };
    for (const auto* split : {&out.split_a, &out.split_b}) {
      for (const auto& band : split->window_bands) {
        need_field({band.alias, "timestamp"});
      }
      for (const auto& p : split->residual_filters) {
        std::vector<PredicatePtr> leaves;
        stream::collect_conjuncts(p, leaves);
        for (const auto& leaf : leaves) {
          if (leaf->kind() == Predicate::Kind::kCompareConst) {
            need_field(static_cast<const CompareConst&>(*leaf).lhs());
          } else if (leaf->kind() == Predicate::Kind::kCompareField) {
            need_field(static_cast<const CompareField&>(*leaf).lhs());
            need_field(static_cast<const CompareField&>(*leaf).rhs());
          } else if (leaf->kind() == Predicate::Kind::kTimeBand) {
            need_field(static_cast<const TimeBand&>(*leaf).newer());
            need_field(static_cast<const TimeBand&>(*leaf).older());
          }
        }
      }
    }
    // Window bands compare against the newest timestamp in the result; make
    // sure every source's timestamp is available when any band exists.
    if (!out.split_a.window_bands.empty() ||
        !out.split_b.window_bands.empty()) {
      for (const auto& s : out.merged.sources) {
        need_field({s.alias, "timestamp"});
      }
    }

    for (const auto& w : u.wildcard_aliases) {
      out.merged.select.push_back({w, ""});
    }
    for (const auto& [alias, field] : u.fields) {
      if (!u.wildcard_aliases.contains(alias)) {
        out.merged.select.push_back({alias, field});
      }
    }
    out.merged.select_all = false;
  }
  return out;
}

}  // namespace cosmos::query
