#include "graph/coarsen.h"

#include <gtest/gtest.h>

namespace cosmos::graph {
namespace {

QueryVertex qv(QueryId id, double weight) {
  QueryVertex v;
  v.weight = weight;
  v.queries = {id};
  v.state_size = weight * 10;
  return v;
}

QueryVertex nv(NodeId node, int clu) {
  QueryVertex v;
  v.kind = QVertexKind::kNetwork;
  v.node = node;
  v.clu = clu;
  return v;
}

TEST(Coarsen, ReducesToVmax) {
  QueryGraph g;
  for (int i = 0; i < 16; ++i) {
    g.add_vertex(qv(QueryId{static_cast<QueryId::value_type>(i)}, 1.0));
  }
  // Chain edges so matching always finds partners.
  for (QueryGraph::VertexIndex i = 0; i + 1 < 16; ++i) {
    g.add_edge(i, i + 1, 1.0 + i);
  }
  Rng rng{1};
  const auto result = coarsen(g, 4, nullptr, rng);
  EXPECT_LE(result.graph.size(), 4u);
  EXPECT_GE(result.rounds, 1u);
}

TEST(Coarsen, PreservesTotalWeightAndQueries) {
  QueryGraph g;
  double total = 0;
  for (int i = 0; i < 10; ++i) {
    const double w = 1.0 + i;
    g.add_vertex(qv(QueryId{static_cast<QueryId::value_type>(i)}, w));
    total += w;
  }
  for (QueryGraph::VertexIndex i = 0; i + 1 < 10; ++i) g.add_edge(i, i + 1, 1);
  Rng rng{2};
  const auto result = coarsen(g, 3, nullptr, rng);
  double coarse_total = 0;
  std::size_t query_count = 0;
  for (QueryGraph::VertexIndex i = 0; i < result.graph.size(); ++i) {
    coarse_total += result.graph.vertex(i).weight;
    query_count += result.graph.vertex(i).queries.size();
  }
  EXPECT_NEAR(coarse_total, total, 1e-9);
  EXPECT_EQ(query_count, 10u);
}

TEST(Coarsen, MembershipMapsAreConsistent) {
  QueryGraph g;
  for (int i = 0; i < 12; ++i) {
    g.add_vertex(qv(QueryId{static_cast<QueryId::value_type>(i)}, 1.0));
  }
  for (QueryGraph::VertexIndex i = 0; i + 1 < 12; ++i) g.add_edge(i, i + 1, 1);
  Rng rng{3};
  const auto result = coarsen(g, 5, nullptr, rng);
  ASSERT_EQ(result.coarse_of.size(), 12u);
  std::size_t member_total = 0;
  for (QueryGraph::VertexIndex c = 0; c < result.members.size(); ++c) {
    for (const auto f : result.members[c]) {
      EXPECT_EQ(result.coarse_of[f], c);
    }
    member_total += result.members[c].size();
  }
  EXPECT_EQ(member_total, 12u);
}

TEST(Coarsen, NVerticesFromDifferentClustersNeverMerge) {
  QueryGraph g;
  const auto n0 = g.add_vertex(nv(NodeId{1}, 0));
  const auto n1 = g.add_vertex(nv(NodeId{2}, 1));
  g.add_edge(n0, n1, 100.0);  // tempting edge, forbidden merge
  for (int i = 0; i < 6; ++i) {
    const auto q =
        g.add_vertex(qv(QueryId{static_cast<QueryId::value_type>(i)}, 1.0));
    g.add_edge(q, i % 2 == 0 ? n0 : n1, 1.0);
  }
  Rng rng{4};
  const auto result = coarsen(g, 3, nullptr, rng);
  // Both cluster-0 and cluster-1 n-vertices survive distinctly.
  int clu0 = 0, clu1 = 0;
  for (QueryGraph::VertexIndex i = 0; i < result.graph.size(); ++i) {
    const auto& v = result.graph.vertex(i);
    if (v.is_n() && v.clu == 0) ++clu0;
    if (v.is_n() && v.clu == 1) ++clu1;
  }
  EXPECT_EQ(clu0, 1);
  EXPECT_EQ(clu1, 1);
}

TEST(Coarsen, UncoveredNVertexNeverAbsorbsQueries) {
  QueryGraph g;
  const auto anchor = g.add_vertex(nv(NodeId{9}, -1));
  const auto q0 = g.add_vertex(qv(QueryId{0}, 1.0));
  const auto q1 = g.add_vertex(qv(QueryId{1}, 1.0));
  g.add_edge(q0, anchor, 50.0);
  g.add_edge(q1, anchor, 50.0);
  g.add_edge(q0, q1, 1.0);
  Rng rng{5};
  const auto result = coarsen(g, 2, nullptr, rng);
  for (QueryGraph::VertexIndex i = 0; i < result.graph.size(); ++i) {
    const auto& v = result.graph.vertex(i);
    if (v.is_n() && v.clu < 0) EXPECT_TRUE(v.queries.empty());
  }
}

TEST(Coarsen, QVertexMayMergeIntoCoveredNVertex) {
  QueryGraph g;
  const auto n0 = g.add_vertex(nv(NodeId{1}, 0));
  const auto q0 = g.add_vertex(qv(QueryId{0}, 1.0));
  const auto q1 = g.add_vertex(qv(QueryId{1}, 1.0));
  g.add_edge(q0, n0, 10.0);
  g.add_edge(q1, n0, 10.0);
  Rng rng{6};
  const auto result = coarsen(g, 2, nullptr, rng);
  EXPECT_LE(result.graph.size(), 2u);
  // The n-vertex payload keeps its identity.
  bool n_found = false;
  for (QueryGraph::VertexIndex i = 0; i < result.graph.size(); ++i) {
    if (result.graph.vertex(i).is_n()) {
      n_found = true;
      EXPECT_EQ(result.graph.vertex(i).clu, 0);
    }
  }
  EXPECT_TRUE(n_found);
}

TEST(Coarsen, DisconnectedGraphFallsBackToForcedMerges) {
  QueryGraph g;
  for (int i = 0; i < 8; ++i) {
    g.add_vertex(qv(QueryId{static_cast<QueryId::value_type>(i)}, 1.0));
  }
  // No edges at all.
  Rng rng{7};
  const auto result = coarsen(g, 2, nullptr, rng);
  EXPECT_LE(result.graph.size(), 2u);
  EXPECT_GT(result.forced_merges, 0u);
}

TEST(Coarsen, AlreadySmallGraphUntouched) {
  QueryGraph g;
  g.add_vertex(qv(QueryId{0}, 1.0));
  g.add_vertex(qv(QueryId{1}, 1.0));
  Rng rng{8};
  const auto result = coarsen(g, 5, nullptr, rng);
  EXPECT_EQ(result.graph.size(), 2u);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(Coarsen, InterestUnionsOnMerge) {
  QueryGraph g;
  QueryVertex a = qv(QueryId{0}, 1.0);
  a.interest = BitVector{8};
  a.interest.set(1);
  QueryVertex b = qv(QueryId{1}, 1.0);
  b.interest = BitVector{8};
  b.interest.set(5);
  const auto va = g.add_vertex(a);
  const auto vb = g.add_vertex(b);
  g.add_edge(va, vb, 3.0);
  Rng rng{9};
  const auto result = coarsen(g, 1, nullptr, rng);
  ASSERT_EQ(result.graph.size(), 1u);
  const auto& v = result.graph.vertex(0);
  EXPECT_TRUE(v.interest.test(1));
  EXPECT_TRUE(v.interest.test(5));
  EXPECT_EQ(v.queries.size(), 2u);
}

}  // namespace
}  // namespace cosmos::graph
