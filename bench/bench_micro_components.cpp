// Component micro-benchmarks (google-benchmark): the hot paths of the
// middleware — bit-vector overlap, query-graph construction, coarsening,
// mapping, diffusion, online insertion, pub/sub matching.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "coord/diffusion.h"
#include "graph/coarsen.h"
#include "pubsub/broker_network.h"
#include "sim/sensor_trace.h"

using namespace cosmos;
using namespace cosmos::bench;

namespace {

void BM_BitVectorOverlap(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  Rng rng{1};
  BitVector a{bits}, b{bits};
  std::vector<double> w(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.next_bool(0.01)) a.set(i);
    if (rng.next_bool(0.01)) b.set(i);
    w[i] = rng.next_double(1.0, 10.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.weighted_intersection(b, w));
  }
}
BENCHMARK(BM_BitVectorOverlap)->Arg(2000)->Arg(20000);

void BM_QueryGraphBuild(benchmark::State& state) {
  SimSetup setup{0.1, 4, 1};
  const auto profiles =
      setup.workload->make_queries(static_cast<std::size_t>(state.range(0)));
  graph::EdgeModel model{setup.workload->space()};
  std::vector<graph::QueryVertex> items;
  for (const auto& p : profiles) items.push_back(graph::to_query_vertex(p));
  for (auto _ : state) {
    Rng rng{2};
    benchmark::DoNotOptimize(
        graph::build_query_graph(items, model, {}, nullptr, rng));
  }
}
BENCHMARK(BM_QueryGraphBuild)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_Coarsen(benchmark::State& state) {
  SimSetup setup{0.1, 4, 1};
  const auto profiles = setup.workload->make_queries(1000);
  graph::EdgeModel model{setup.workload->space()};
  std::vector<graph::QueryVertex> items;
  for (const auto& p : profiles) items.push_back(graph::to_query_vertex(p));
  Rng grng{3};
  const auto qg = graph::build_query_graph(items, model, {}, nullptr, grng);
  for (auto _ : state) {
    Rng rng{4};
    benchmark::DoNotOptimize(graph::coarsen(qg, 64, &model, rng));
  }
}
BENCHMARK(BM_Coarsen)->Unit(benchmark::kMillisecond);

void BM_Diffusion(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<coord::DiffusionEdge> edges;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) edges.push_back({a, b, 1.0});
  }
  Rng rng{5};
  std::vector<double> imbalance(n);
  double sum = 0;
  for (auto& x : imbalance) {
    x = rng.next_double(-5, 5);
    sum += x;
  }
  for (auto& x : imbalance) x -= sum / static_cast<double>(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coord::solve_diffusion(n, edges, imbalance));
  }
}
BENCHMARK(BM_Diffusion)->Arg(8)->Arg(32);

void BM_OnlineInsert(benchmark::State& state) {
  SimSetup setup{0.1, 4, 1};
  auto dist = setup.make_distributor(2);
  dist.distribute(setup.workload->make_queries(2000));
  auto stream = setup.workload->make_queries(100000);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.insert_query(stream[i++ % stream.size()]));
  }
}
BENCHMARK(BM_OnlineInsert);

void BM_PubSubPublish(benchmark::State& state) {
  Rng rng{6};
  const auto topo = net::make_wide_area_mesh(30, 6, rng);
  std::vector<NodeId> all;
  for (std::uint32_t i = 0; i < 30; ++i) all.push_back(NodeId{i});
  const net::LatencyMatrix lat{topo, all};
  pubsub::BrokerNetwork broker{all, lat};
  broker.advertise("S", NodeId{0}, sim::sensor_schema());
  for (int i = 0; i < 500; ++i) {
    pubsub::Subscription sub;
    sub.subscriber = all[1 + rng.next_below(29)];
    sub.streams = {"S"};
    sub.filter = stream::Predicate::cmp(
        {"", "snowHeight"}, stream::CmpOp::kGe,
        stream::Value{rng.next_double(0.0, 40.0)});
    broker.subscribe(std::move(sub));
  }
  stream::Tuple t;
  t.ts = 0;
  t.values = {stream::Value{20.0}, stream::Value{-3.0},
              stream::Value{std::int64_t{0}}, stream::Value{std::int64_t{0}}};
  std::size_t delivered = 0;
  for (auto _ : state) {
    ++t.ts;
    t.values[3] = stream::Value{t.ts};
    broker.publish("S", t, [&delivered](const pubsub::Subscription&,
                                        const pubsub::Message&) {
      ++delivered;
    });
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_PubSubPublish);

}  // namespace

BENCHMARK_MAIN();
