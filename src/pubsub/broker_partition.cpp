#include "pubsub/broker_partition.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace cosmos::pubsub {

void TrafficStats::merge(const TrafficStats& other) {
  bytes += other.bytes;
  weighted_cost += other.weighted_cost;
  messages_sent += other.messages_sent;
  for (const auto& [link, t] : other.links) {
    auto& row = links[link];
    row.bytes += t.bytes;
    row.weighted_cost += t.weighted_cost;
    row.messages_sent += t.messages_sent;
  }
}

std::size_t Overlay::index_of(NodeId n) const {
  const auto it = index.find(n);
  if (it == index.end()) {
    throw std::invalid_argument{"BrokerNetwork: not a participant"};
  }
  return it->second;
}

BrokerPartition::BrokerPartition(const Overlay& overlay, std::string stream,
                                 NodeId publisher, stream::Schema schema,
                                 bool use_index)
    : overlay_(&overlay),
      stream_(std::move(stream)),
      publisher_(publisher),
      publisher_idx_(overlay.index_of(publisher)),
      schema_(std::move(schema)),
      use_index_(use_index),
      index_(&schema_) {}

void BrokerPartition::add_subscription(const Subscription* sub) {
  // Compile once per subscribe. Lenient: a filter referencing attributes
  // this stream lacks throws std::invalid_argument per evaluated row, which
  // filter_matches turns into "no match" — the interpreter's contract
  // (Subscription::matches) row for row.
  MatchedSub entry{sub, overlay_->index_of(sub->subscriber),
                   stream::CompiledPredicate::compile_lenient(
                       sub->filter, {{"", &schema_, SIZE_MAX}})};
  SubscriptionIndex::Slot slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    subs_[slot] = std::move(entry);
  } else {
    slot = static_cast<SubscriptionIndex::Slot>(subs_.size());
    subs_.push_back(std::move(entry));
  }
  slot_of_.emplace(sub->id, slot);
  ++live_count_;
  if (use_index_) index_.add(slot, sub->filter, subs_[slot].filter);
}

void BrokerPartition::remove_subscription(SubscriptionId id) {
  const auto [first, last] = slot_of_.equal_range(id);
  for (auto it = first; it != last; ++it) {
    const auto slot = it->second;
    if (use_index_) index_.remove(slot);
    subs_[slot] = {};
    free_slots_.push_back(slot);
    --live_count_;
  }
  slot_of_.erase(first, last);
}

bool BrokerPartition::filter_matches(
    const MatchedSub& entry, const stream::CompiledPredicate::Row& row) {
  // A filter referencing attributes this message lacks matches nothing —
  // the interpreter's contract (Subscription::matches), evaluated without
  // a per-row exception unwind.
  return entry.filter.eval_unresolved_false(&row);
}

void BrokerPartition::match(const stream::Tuple& tuple,
                            const DeliveryCallback& callback) {
  if (live_count_ == 0) return;
  const stream::CompiledPredicate::Row row{tuple.ts, tuple.values.data(),
                                           tuple.values.size()};
  matched_.clear();
  matched_slots_.clear();
  if (use_index_) {
    index_.probe(row, matched_slots_);
    // Candidates owe their residual; the anchor itself already held.
    std::erase_if(matched_slots_, [this, &row](SubscriptionIndex::Slot s) {
      const auto* res = index_.residual(s);
      return res != nullptr && !res->eval(&row);
    });
    for (const auto slot : index_.scan_slots()) {
      if (filter_matches(subs_[slot], row)) matched_slots_.push_back(slot);
    }
    // Deliveries fire in slot order, exactly like the linear scan.
    std::sort(matched_slots_.begin(), matched_slots_.end());
    for (const auto slot : matched_slots_) matched_.push_back(&subs_[slot]);
  } else {
    for (const auto& entry : subs_) {
      if (entry.sub != nullptr && filter_matches(entry, row)) {
        matched_.push_back(&entry);
      }
    }
  }
  if (matched_.empty()) return;
  Message message{stream_, &schema_, tuple};
  route(message, publisher_idx_, SIZE_MAX, matched_, callback);
}

void BrokerPartition::match_rows(const runtime::TupleBatch& batch) {
  const std::size_t slots = subs_.size();
  if (rows_of_.size() < slots) rows_of_.resize(slots);
  active_.clear();
  if (use_index_) {
    if (cand_rows_.size() < slots) cand_rows_.resize(slots);
    touched_.clear();
    index_.probe_batch(batch, cand_rows_, touched_);
    for (const auto slot : touched_) {
      auto& cand = cand_rows_[slot];
      if (const auto* res = index_.residual(slot)) {
        res->filter_batch(batch, &cand, rows_of_[slot]);
      } else {
        std::swap(rows_of_[slot], cand);
      }
      cand.clear();
      if (!rows_of_[slot].empty()) active_.push_back(slot);
    }
    for (const auto slot : index_.scan_slots()) {
      subs_[slot].filter.filter_batch_unresolved_false(batch, nullptr,
                                                       rows_of_[slot]);
      if (!rows_of_[slot].empty()) active_.push_back(slot);
    }
    std::sort(active_.begin(), active_.end());
    return;
  }
  // Linear oracle: every live slot's compiled filter over the whole batch.
  for (std::size_t s = 0; s < slots; ++s) {
    const MatchedSub& entry = subs_[s];
    if (entry.sub == nullptr) continue;
    entry.filter.filter_batch_unresolved_false(batch, nullptr, rows_of_[s]);
    if (!rows_of_[s].empty()) {
      active_.push_back(static_cast<SubscriptionIndex::Slot>(s));
    }
  }
}

void BrokerPartition::match_batch(const runtime::TupleBatch& batch,
                                  std::vector<BatchDelivery>& deliveries) {
  if (batch.empty()) return;
  // Validate ordering up front, before any matching or accounting: a batch
  // violating the per-stream timestamp rule must fail atomically, not after
  // half of its rows already generated traffic.
  if (!batch.timestamps_ordered()) {
    for (std::size_t r = 1; r < batch.size(); ++r) {
      if (batch.ts(r) < batch.ts(r - 1)) {
        throw std::invalid_argument{
            "BrokerPartition: out-of-order batch on stream " + stream_ +
            ": ts " + std::to_string(batch.ts(r)) + " after ts " +
            std::to_string(batch.ts(r - 1))};
      }
    }
  }
  // No subscriptions: nothing can match, route, or be accounted — skip the
  // per-row materialization entirely (as the scalar path does).
  if (live_count_ == 0) return;

  // Stage 1 — candidate generation + residual (index path) or full-filter
  // evaluation (scan list, linear oracle), producing one ascending row
  // list per matched slot. Those lists are also exactly the BatchDelivery
  // row sets.
  match_rows(batch);
  if (active_.empty()) return;

  // Stage 2 — invert the per-slot row lists into per-row matched-slot
  // lists (one pass over the matches, not a per-row scan of every
  // subscription), then route and account row by row, identical to
  // row-count scalar match() calls: deliveries appear in first-match
  // order, rows no subscription matched are never materialized.
  const std::size_t first_delivery = deliveries.size();
  if (row_subs_.size() < batch.size()) row_subs_.resize(batch.size());
  for (const auto slot : active_) {  // ascending => per-row lists ascending
    for (const auto r : rows_of_[slot]) row_subs_[r].push_back(slot);
  }
  std::unordered_map<SubscriptionId, std::size_t> delivery_of;
  Message message{stream_, &schema_, {}};
  for (std::uint32_t row = 0; row < batch.size(); ++row) {
    auto& here = row_subs_[row];
    if (here.empty()) continue;
    matched_.clear();
    for (const auto slot : here) {
      matched_.push_back(&subs_[slot]);
      auto [dit, fresh] = delivery_of.try_emplace(
          subs_[slot].sub->id, deliveries.size() - first_delivery);
      if (fresh) deliveries.push_back({subs_[slot].sub, &batch, {}});
      deliveries[first_delivery + dit->second].rows.push_back(row);
    }
    here.clear();
    batch.materialize(row, message.tuple);
    route(message, publisher_idx_, SIZE_MAX, matched_,
          [](const Subscription&, const Message&) {});
  }
  for (const auto slot : active_) rows_of_[slot].clear();
}

void BrokerPartition::route(const Message& message, std::size_t at,
                            std::size_t came_from,
                            const std::vector<const MatchedSub*>& matched,
                            const DeliveryCallback& callback) {
  // Local delivery.
  for (const auto* m : matched) {
    if (m->home == at) callback(*m->sub, message);
  }
  // Forward to each neighbor leading to at least one interested
  // subscription, with attributes pruned to the union of their projections
  // (early projection; one copy per link regardless of fan-out behind it).
  static const std::set<std::string> kAllAttrs;
  for (const auto nb : overlay_->adj[at]) {
    if (nb == came_from) continue;
    // route_attrs_ is a member scratch: its use completes (message_bytes)
    // before the recursive call below reuses it, and each neighbor
    // iteration re-clears it — no per-row per-neighbor set allocation.
    route_attrs_.clear();
    bool wants_all = false;
    bool any = false;
    for (const auto* m : matched) {
      if (m->home == at || overlay_->next_hop[at][m->home] != nb) continue;
      any = true;
      if (m->sub->projection.empty()) {
        wants_all = true;
      } else if (!wants_all) {
        route_attrs_.insert(m->sub->projection.begin(),
                            m->sub->projection.end());
      }
    }
    if (!any) continue;
    const double bytes =
        message_bytes(message, wants_all ? kAllAttrs : route_attrs_);
    const double latency = overlay_->lat->latency(overlay_->participants[at],
                                                  overlay_->participants[nb]);
    traffic_.bytes += bytes;
    traffic_.weighted_cost += bytes * latency;
    ++traffic_.messages_sent;
    auto& link = traffic_.links[{overlay_->participants[at],
                                 overlay_->participants[nb]}];
    link.bytes += bytes;
    link.weighted_cost += bytes * latency;
    ++link.messages_sent;
    route(message, nb, at, matched, callback);
  }
}

}  // namespace cosmos::pubsub
