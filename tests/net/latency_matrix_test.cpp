#include "net/latency_matrix.h"

#include <gtest/gtest.h>

namespace cosmos::net {
namespace {

Topology triangle() {
  Topology t{4};
  t.add_edge(NodeId{0}, NodeId{1}, 1.0);
  t.add_edge(NodeId{1}, NodeId{2}, 2.0);
  t.add_edge(NodeId{0}, NodeId{2}, 10.0);
  t.add_edge(NodeId{2}, NodeId{3}, 1.0);
  return t;
}

TEST(LatencyMatrix, UsesShortestPaths) {
  const auto t = triangle();
  LatencyMatrix m{t, {NodeId{0}, NodeId{2}}};
  EXPECT_DOUBLE_EQ(m.latency(NodeId{0}, NodeId{2}), 3.0);  // via node 1
  EXPECT_DOUBLE_EQ(m.latency(NodeId{0}, NodeId{0}), 0.0);
}

TEST(LatencyMatrix, Symmetric) {
  const auto t = triangle();
  LatencyMatrix m{t, {NodeId{0}, NodeId{2}, NodeId{3}}};
  EXPECT_DOUBLE_EQ(m.latency(NodeId{0}, NodeId{3}),
                   m.latency(NodeId{3}, NodeId{0}));
}

TEST(LatencyMatrix, RejectsNonMembers) {
  const auto t = triangle();
  LatencyMatrix m{t, {NodeId{0}, NodeId{2}}};
  EXPECT_THROW(m.latency(NodeId{0}, NodeId{1}), std::invalid_argument);
  EXPECT_FALSE(m.contains(NodeId{1}));
  EXPECT_TRUE(m.contains(NodeId{2}));
}

TEST(LatencyMatrix, RejectsDuplicatesAndOutOfRange) {
  const auto t = triangle();
  EXPECT_THROW(LatencyMatrix(t, {NodeId{0}, NodeId{0}}),
               std::invalid_argument);
  EXPECT_THROW(LatencyMatrix(t, {NodeId{0}, NodeId{77}}),
               std::invalid_argument);
}

TEST(LatencyMatrix, MedianMinimizesTotalLatency) {
  // Line 0 -1- 1 -1- 2 -1- 3: median of {0,1,3} is 1
  Topology t{4};
  t.add_edge(NodeId{0}, NodeId{1}, 1.0);
  t.add_edge(NodeId{1}, NodeId{2}, 1.0);
  t.add_edge(NodeId{2}, NodeId{3}, 1.0);
  LatencyMatrix m{t, {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}}};
  EXPECT_EQ(m.median({NodeId{0}, NodeId{1}, NodeId{3}}), NodeId{1});
  EXPECT_EQ(m.median({NodeId{3}}), NodeId{3});
  EXPECT_THROW(m.median({}), std::invalid_argument);
}

}  // namespace
}  // namespace cosmos::net
