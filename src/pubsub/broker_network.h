// A distributed content-based publish/subscribe substrate (Siena-style,
// Section 1.2), simulated in-process over an overlay tree.
//
// Brokers sit on every participant node; the overlay is the latency-minimal
// spanning tree of the participants. Publishers advertise streams; the
// advertisement floods the tree so every broker knows which neighbor leads
// to each stream's source. Subscriptions propagate from the subscriber
// toward the advertisers, installing per-link routing state; covered
// subscriptions are absorbed (not forwarded). Messages then flow along the
// reverse subscription paths: one copy per link regardless of how many
// downstream subscriptions want it, with attributes pruned to the union of
// downstream projections (early projection + filtering).
//
// All link traffic is accounted as bytes and as byte*ms (the weighted
// communication cost the prototype study reports).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/latency_matrix.h"
#include "pubsub/subscription.h"
#include "runtime/tuple_batch.h"

namespace cosmos::pubsub {

/// Batched delivery: the rows of a published batch one subscription
/// matched, as ascending indices into the source batch (select() them to
/// materialize the subscriber's view).
struct BatchDelivery {
  const Subscription* sub = nullptr;
  const runtime::TupleBatch* source = nullptr;
  std::vector<std::uint32_t> rows;
};

struct TrafficStats {
  double bytes = 0.0;
  double weighted_cost = 0.0;  ///< sum of bytes * link latency (byte*ms)
  std::size_t messages_sent = 0;
};

class BrokerNetwork {
 public:
  using DeliveryCallback =
      std::function<void(const Subscription&, const Message&)>;

  /// Builds the overlay spanning tree over `participants` using latencies
  /// from `lat` (all participants must be members of `lat`).
  BrokerNetwork(std::vector<NodeId> participants,
                const net::LatencyMatrix& lat);

  /// Declares that `publisher` emits `stream` with the given schema.
  void advertise(const std::string& stream, NodeId publisher,
                 stream::Schema schema);

  /// Installs a subscription at its subscriber node; returns its id.
  SubscriptionId subscribe(Subscription sub);
  void unsubscribe(SubscriptionId id);

  /// Publishes a tuple from the stream's advertised publisher. Matching
  /// subscriptions receive it via `callback`; link traffic is accounted.
  void publish(const std::string& stream, const stream::Tuple& tuple,
               const DeliveryCallback& callback);

  using BatchDeliveryCallback = std::function<void(const BatchDelivery&)>;

  /// Batched forwarding: publishes every row of `batch` with per-tuple
  /// matching and link accounting identical to N publish() calls, but one
  /// delivery per matching subscription carrying all of its rows at once
  /// (callbacks fire after the whole batch is routed, in first-match
  /// order). This is what lets the runtime hand whole batches to shard
  /// engines instead of crossing the queue per tuple.
  void publish_batch(const std::string& stream,
                     const runtime::TupleBatch& batch,
                     const BatchDeliveryCallback& callback);

  [[nodiscard]] const TrafficStats& traffic() const noexcept {
    return traffic_;
  }
  void reset_traffic() noexcept { traffic_ = {}; }

  [[nodiscard]] const stream::Schema& schema(const std::string& stream) const;

  /// Overlay neighbors of a node (for tests).
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId n) const;

 private:
  struct Advert {
    NodeId publisher;
    stream::Schema schema;
  };

  struct MatchedSub {
    const Subscription* sub;
    std::size_t home;
  };

  [[nodiscard]] std::size_t index_of(NodeId n) const;
  /// Next hop from `from` toward `to` along the tree.
  [[nodiscard]] std::size_t next_hop(std::size_t from, std::size_t to) const;
  void route(const Message& message, std::size_t at, std::size_t came_from,
             const std::vector<MatchedSub>& matched,
             const DeliveryCallback& callback);

  std::vector<NodeId> participants_;
  std::unordered_map<NodeId, std::size_t> index_;
  const net::LatencyMatrix* lat_;
  std::vector<std::vector<std::size_t>> adj_;        ///< tree adjacency
  std::vector<std::vector<std::size_t>> next_hop_;   ///< routing table
  std::map<std::string, Advert> adverts_;
  std::unordered_map<SubscriptionId, Subscription> subscriptions_;
  /// subs_at_[node] = subscriptions homed there.
  std::vector<std::vector<SubscriptionId>> subs_at_;
  /// stream name -> subscriptions interested (routing-table index).
  std::unordered_map<std::string, std::vector<SubscriptionId>> by_stream_;
  SubscriptionId::value_type next_sub_id_ = 0;
  TrafficStats traffic_;
};

}  // namespace cosmos::pubsub
