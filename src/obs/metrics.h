// Named-metric registry: counters, gauges and latency histograms behind
// stable pointers. Registration (name lookup) takes a mutex and happens
// once, outside the hot path; after that, recording is a relaxed atomic
// operation on the returned cell — cheap enough for per-tuple code, and
// safe to sample from another thread (adapt::LoadMonitor-style periodic
// consumers read snapshot() while recorders run).
//
// MetricsSnapshot is the plain value type everything downstream consumes:
// RunReport embeds one, the kStatsSample wire frame ships one per worker,
// and merge() folds worker snapshots into fleet-wide totals.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace cosmos::obs {

/// Monotone event counter (relaxed increments from any thread).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins level (queue depths, rates, ratios).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Point-in-time copy of a registry (or a hand-built equivalent): entries
/// sorted by name. Plain data — copyable, serializable, mergeable.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  [[nodiscard]] const std::uint64_t* counter(const std::string& name) const;
  [[nodiscard]] const double* gauge(const std::string& name) const;
  [[nodiscard]] const HistogramSnapshot* histogram(
      const std::string& name) const;

  /// Fleet aggregation: counters and histograms add; a gauge takes the
  /// other side's value (last writer wins, matching Gauge semantics).
  void merge(const MetricsSnapshot& other);
};

/// Get-or-create registry. Cells never move or die while the registry
/// lives, so callers hold the returned references across the whole run.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;  ///< guards the maps, never the cells
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace cosmos::obs
