// Multi-process federation differential: a driver plus N real cosmos_noded
// worker processes over Unix-domain sockets must deliver byte-identical
// per-query result sequences to the synchronous push() mode — across
// worker counts, in-flight windows, worker shard counts, and scripted live
// migrations (which must ship real serialized state over the wire). Plus
// the fault path: a worker killed mid-run surfaces as a clean throw, never
// a hang.
//
// Workloads are the same seeded random ones the in-process differential
// uses (tests/support/random_workload.h), so any divergence here is
// attributable to the wire path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cosmos/cosmos.h"
#include "node/spawn.h"
#include "support/random_workload.h"

namespace cosmos::middleware {
namespace {

using testsupport::ResultLog;
using testsupport::build_system;
using testsupport::make_workload;

struct Fleet {
  std::vector<node::NodeProcess> procs;
  std::vector<std::string> endpoints;
};

Fleet spawn_fleet(std::size_t n, const std::string& tag) {
  static int counter = 0;
  Fleet fleet;
  const std::string noded = node::default_noded_path();
  for (std::size_t i = 0; i < n; ++i) {
    const std::string endpoint = "unix:/tmp/cosmos_fedtest_" + tag + "_" +
                                 std::to_string(::getpid()) + "_" +
                                 std::to_string(counter++) + ".sock";
    fleet.procs.push_back(node::spawn_noded(noded, endpoint));
    fleet.endpoints.push_back(endpoint);
  }
  return fleet;
}

TEST(Federation, MatchesPushAcrossWorkerCountsAndWindows) {
  std::uint64_t only_seed = 0;
  if (const char* s = std::getenv("COSMOS_DIFF_SEED")) {
    only_seed = std::strtoull(s, nullptr, 10);
  }

  std::size_t total_results = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    if (only_seed != 0 && seed != only_seed) continue;
    const auto w = make_workload(seed);

    ResultLog push_log;
    {
      auto sys = build_system(w, push_log);
      for (const auto& ev : w.events) sys->push(ev.stream, ev.tuple);
    }
    for (const auto& [q, lines] : push_log) total_results += lines.size();

    struct Config {
      std::size_t workers;
      std::size_t inflight;
      std::size_t shards;
      std::size_t batch;
    };
    for (const Config cfg : {Config{2, 1, 1, 64}, Config{2, 4, 2, 16},
                             Config{4, 4, 1, 64}}) {
      auto fleet = spawn_fleet(cfg.workers, "diff");
      ResultLog fed_log;
      auto sys = build_system(w, fed_log);
      Cosmos::FederationOptions opts;
      opts.workers = fleet.endpoints;
      opts.batch_size = cfg.batch;
      opts.max_inflight_chunks = cfg.inflight;
      opts.worker_shards = cfg.shards;
      opts.queue_capacity = 8;  // small: exercise channel backpressure
      opts.tick_ms = 20 * 60'000;
      const auto report = sys->run_federated(w.events, opts);

      EXPECT_EQ(report.tuples, w.events.size());
      EXPECT_EQ(report.federation.workers, cfg.workers);
      ASSERT_EQ(report.federation.links.size(), cfg.workers);
      for (const auto& link : report.federation.links) {
        EXPECT_GT(link.frames_sent, 0u);
        EXPECT_GT(link.bytes_sent, link.frames_sent * 12);
      }
      ASSERT_EQ(fed_log, push_log)
          << "federation mismatch: seed=" << seed
          << " workers=" << cfg.workers << " inflight=" << cfg.inflight
          << " shards=" << cfg.shards << " batch=" << cfg.batch
          << "  (replay: COSMOS_DIFF_SEED=" << seed << ")";

      for (auto& p : fleet.procs) EXPECT_EQ(p.wait(), 0);
    }
  }
  EXPECT_GT(total_results, 0u);
}

TEST(Federation, TrafficAccountingMatchesInProcess) {
  const auto w = make_workload(3);
  ResultLog in_log;
  double in_bytes = 0.0;
  {
    auto sys = build_system(w, in_log);
    for (const auto& ev : w.events) sys->push(ev.stream, ev.tuple);
    in_bytes = sys->traffic().bytes;
  }
  ASSERT_GT(in_bytes, 0.0);

  auto fleet = spawn_fleet(2, "traffic");
  ResultLog fed_log;
  auto sys = build_system(w, fed_log);
  Cosmos::FederationOptions opts;
  opts.workers = fleet.endpoints;
  const auto report = sys->run_federated(w.events, opts);
  // Worker p1 shares + driver p2 share must reproduce the in-process
  // broker's totals exactly (same matching, same accounting code).
  EXPECT_DOUBLE_EQ(report.federation.matched_traffic.bytes, in_bytes);
}

TEST(Federation, ScriptedMigrationShipsStateAndPreservesResults) {
  // Seeds chosen so the workload has windowed joins with live state; the
  // migration moves every deployed engine in turn mid-trace.
  for (const std::uint64_t seed : {2, 7}) {
    const auto w = make_workload(seed);

    ResultLog push_log;
    {
      auto sys = build_system(w, push_log);
      for (const auto& ev : w.events) sys->push(ev.stream, ev.tuple);
    }

    auto fleet = spawn_fleet(2, "mig");
    ResultLog fed_log;
    auto sys = build_system(w, fed_log);

    // Schedule a mid-trace migration of every unit host to the opposite
    // worker. Host nodes come from the workload's query placements.
    const stream::Timestamp mid =
        w.events[w.events.size() / 2].tuple.ts;
    Cosmos::FederationOptions opts;
    opts.workers = fleet.endpoints;
    opts.batch_size = 32;
    std::set<NodeId::value_type> hosts;
    for (const auto& [text, host, proxy] : w.queries) {
      hosts.insert(host.value());
    }
    for (const auto hv : hosts) {
      Cosmos::FederationOptions::Migration m;
      m.at_ms = mid;
      m.engine = NodeId{hv};
      m.to_worker = (hv % 2) + 1;  // flip to the other worker
      opts.migrations.push_back(m);
    }
    const auto report = sys->run_federated(w.events, opts);

    EXPECT_GT(report.federation.migrations, 0u);
    // The tentpole guarantee: migrated state is real serialized bytes on
    // the wire, not a modeled estimate.
    EXPECT_GT(report.federation.state_bytes_migrated, 0u);
    ASSERT_EQ(fed_log, push_log)
        << "migration differential mismatch: seed=" << seed;
    for (auto& p : fleet.procs) EXPECT_EQ(p.wait(), 0);
  }
}

TEST(Federation, TracingAndStatsSamplingPreserveResultsAndMergeTraces) {
  // Observability across the wire must be a pure observer: with span
  // tracing and periodic worker stats sampling on, the federated result
  // log stays byte-identical to push(), worker registry samples arrive,
  // and the merged Chrome trace holds both driver (pid 0) and worker
  // (pid >= 1) spans.
  const auto w = make_workload(5);
  ResultLog push_log;
  {
    auto sys = build_system(w, push_log);
    for (const auto& ev : w.events) sys->push(ev.stream, ev.tuple);
  }

  const std::string trace_path = ::testing::TempDir() + "fed_trace_" +
                                 std::to_string(::getpid()) + ".json";
  auto fleet = spawn_fleet(2, "trace");
  ResultLog fed_log;
  auto sys = build_system(w, fed_log);
  Cosmos::FederationOptions opts;
  opts.workers = fleet.endpoints;
  opts.batch_size = 32;
  opts.tick_ms = 20 * 60'000;
  opts.trace_path = trace_path;
  opts.stats_sample_every_ms = 60 * 60'000;
  const auto report = sys->run_federated(w.events, opts);

  ASSERT_EQ(fed_log, push_log) << "tracing perturbed the result stream";
  EXPECT_GT(report.e2e_latency.count, 0u);

  // Every worker shipped at least its final flush-time sample, and the
  // samples carry the node-side shard counters.
  ASSERT_FALSE(report.federation.samples.empty());
  std::set<std::size_t> sampled_workers;
  std::uint64_t sampled_tuples = 0;
  for (const auto& s : report.federation.samples) {
    sampled_workers.insert(s.worker);
    if (const auto* tuples = s.metrics.counter("shard.tuples")) {
      sampled_tuples += *tuples;
    }
  }
  EXPECT_EQ(sampled_workers.size(), 2u);
  EXPECT_GT(sampled_tuples, 0u);

  for (auto& p : fleet.procs) EXPECT_EQ(p.wait(), 0);

  std::ifstream in{trace_path};
  ASSERT_TRUE(in.good()) << trace_path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  std::remove(trace_path.c_str());
  // Driver pipeline spans and worker-side shard spans share the file,
  // re-homed to per-process lanes.
  for (const char* needle :
       {"\"match_wait\"", "\"deliver\"", "\"task\"", "\"pid\":1",
        "\"pid\":2", "\"worker 0\"", "\"worker 1\"", "\"ph\":\"M\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST(Federation, DeadWorkerMidRunThrowsCleanly) {
  const auto w = make_workload(4);
  auto fleet = spawn_fleet(2, "dead");
  ResultLog log;
  auto sys = build_system(w, log);
  Cosmos::FederationOptions opts;
  opts.workers = fleet.endpoints;
  opts.batch_size = 8;

  // Kill worker 0 after the driver has connected but while the trace is
  // replaying: every wait in the protocol is fault-aware, so the run must
  // throw (mentioning the worker), not hang.
  std::thread killer{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    fleet.procs[0].kill();
  }};
  try {
    (void)sys->run_federated(w.events, opts);
    // A tiny trace can legitimately finish before the kill lands.
  } catch (const std::exception& e) {
    // Either the reader reported the dead peer ("worker N (...)") or a
    // send into the dead channel failed — both are clean throws.
    EXPECT_FALSE(std::string{e.what()}.empty());
  }
  killer.join();
}

TEST(Federation, RefusesEmptyWorkerList) {
  const auto w = make_workload(1);
  ResultLog log;
  auto sys = build_system(w, log);
  EXPECT_THROW((void)sys->run_federated(w.events, {}), std::invalid_argument);
}

}  // namespace
}  // namespace cosmos::middleware
