// Compilation of QuerySpecs into running operator pipelines on an Engine.
//
// The pipeline shape is the classic SPJ plan: per-source filters (pushing
// single-alias conjuncts below the join), a left-deep cascade of
// sliding-window joins, a residual filter re-checking window bands, and a
// final projection. Field names are flattened to "alias.field" as soon as a
// tuple enters the plan so that joined tuples keep per-source provenance
// (including per-source timestamps, which result splitting needs).
//
// Every predicate is compiled to a column-slot program at build time
// (stream/compiled_predicate.h), and each plan is wired twice over the
// same operator objects and window state:
//  - the scalar chain (engine scalar taps -> per-row Sinks), driving
//    push() mode;
//  - the batch chain (engine batch taps): per-source filters evaluate
//    compiled predicates straight over the raw TupleBatch (the appended
//    "<alias>.timestamp" column is virtual — read from the row timestamp),
//    selection vectors flow between stages, join probes use per-side hash
//    indexes on extracted equality columns, and tuples are only
//    materialized entering join state or the published result batch.
// A query whose sources share one stream keeps scalar taps only: with two
// taps on one stream, batch-at-a-time delivery would reorder the per-row
// left/right interleaving a self-join depends on.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "query/containment.h"
#include "query/query_spec.h"
#include "stream/engine.h"
#include "stream/operators.h"

namespace cosmos::query {

/// A live query: subscribed to its input streams, publishing its result
/// stream. Destroying the object detaches it from the engine.
class CompiledQuery {
 public:
  /// Registers `result_stream` on the engine and wires the pipeline.
  /// Throws std::invalid_argument on unknown streams/fields.
  CompiledQuery(stream::Engine& engine, const QuerySpec& spec,
                std::string result_stream);
  ~CompiledQuery();

  CompiledQuery(const CompiledQuery&) = delete;
  CompiledQuery& operator=(const CompiledQuery&) = delete;

  [[nodiscard]] const std::string& result_stream() const noexcept {
    return result_stream_;
  }
  [[nodiscard]] const stream::Schema& result_schema() const noexcept {
    return result_schema_;
  }
  [[nodiscard]] std::size_t results_emitted() const noexcept {
    return emitted_;
  }

  /// Tuples currently buffered in the plan's window-join state — the live
  /// operator state a migration would have to ship (adapt's measured
  /// migration cost). Safe to call only while no worker is executing the
  /// owning engine.
  [[nodiscard]] std::size_t state_tuples() const noexcept;

  /// Snapshot / restore of the plan's window-join state, one entry per
  /// join-bearing stage in plan order. Plan construction is deterministic
  /// from (spec, result_stream), so a CompiledQuery built remotely from the
  /// same pair accepts the export positionally — this is the migration
  /// handoff payload. Same safety rule as state_tuples(): only call across
  /// a drain, while no worker executes the owning engine.
  [[nodiscard]] std::vector<stream::WindowJoinOp::State> export_join_state()
      const;
  /// Throws std::invalid_argument if the join count differs from the plan's.
  void import_join_state(std::vector<stream::WindowJoinOp::State> joins);

  /// Advances every join's watermark to `watermark` (no-op where already
  /// past), pruning window state that no in-order future arrival can match.
  /// Lets an external clock expire state on streams that have gone idle —
  /// federated watermark frames drive this.
  void advance_watermark(stream::Timestamp watermark);

 private:
  struct Stage;
  stream::Engine& engine_;
  std::string result_stream_;
  stream::Schema result_schema_;
  std::size_t emitted_ = 0;
  std::vector<std::pair<std::string, std::size_t>> taps_;  // stream, tap id
  std::deque<std::unique_ptr<Stage>> stages_;              // owns operators
};

/// Prefixed ("alias.field") schema of a query's raw join result, before
/// projection. Every alias gets an explicit "<alias>.timestamp" column.
[[nodiscard]] stream::Schema flattened_schema(const stream::Engine& engine,
                                              const QuerySpec& spec);

/// Builds the re-filtering predicate a consumer attaches to a *merged*
/// result stream to recover one original query (the paper's p² subscription
/// content): residual filters AND window bands, expressed over the merged
/// stream's flattened schema.
[[nodiscard]] stream::PredicatePtr make_split_predicate(
    const ResultSplit& split);

/// Column indices of `split`'s projection within the merged stream schema.
[[nodiscard]] std::vector<std::size_t> split_projection_indices(
    const ResultSplit& split, const stream::Schema& merged_schema);

}  // namespace cosmos::query
