#include "common/ids.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace cosmos {
namespace {

TEST(Ids, DefaultIsInvalid) {
  QueryId q;
  EXPECT_FALSE(q.valid());
  EXPECT_EQ(q, QueryId::invalid());
}

TEST(Ids, ValueRoundTrips) {
  NodeId n{42};
  EXPECT_TRUE(n.valid());
  EXPECT_EQ(n.value(), 42u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(QueryId{1}, QueryId{2});
  EXPECT_EQ(QueryId{3}, QueryId{3});
  EXPECT_NE(QueryId{3}, QueryId{4});
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, QueryId>);
  static_assert(!std::is_same_v<StreamId, SubstreamId>);
}

TEST(Ids, Hashable) {
  std::unordered_set<QueryId> s;
  s.insert(QueryId{1});
  s.insert(QueryId{1});
  s.insert(QueryId{2});
  EXPECT_EQ(s.size(), 2u);
}

}  // namespace
}  // namespace cosmos
