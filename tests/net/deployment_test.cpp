#include "net/deployment.h"

#include <gtest/gtest.h>

#include "net/topology.h"

namespace cosmos::net {
namespace {

Topology small_topo(Rng& rng) {
  TransitStubParams p;
  p.transit_domains = 2;
  p.transit_nodes_per_domain = 2;
  p.stub_domains_per_transit = 2;
  p.stub_nodes_per_domain = 12;
  return make_transit_stub(p, rng);
}

TEST(Deployment, RolesAreDisjointAndCounted) {
  Rng rng{1};
  const auto topo = small_topo(rng);
  DeploymentParams p;
  p.num_sources = 10;
  p.num_processors = 20;
  const auto d = make_deployment(topo, p, rng);
  EXPECT_EQ(d.sources.size(), 10u);
  EXPECT_EQ(d.processors.size(), 20u);
  for (const NodeId s : d.sources) {
    EXPECT_TRUE(d.is_source(s));
    EXPECT_FALSE(d.is_processor(s));
  }
  for (const NodeId pr : d.processors) EXPECT_TRUE(d.is_processor(pr));
}

TEST(Deployment, CapabilityOnProcessorsOnly) {
  Rng rng{2};
  const auto topo = small_topo(rng);
  DeploymentParams p;
  p.num_sources = 5;
  p.num_processors = 8;
  const auto d = make_deployment(topo, p, rng);
  EXPECT_DOUBLE_EQ(d.total_capability(), 8.0);  // homogeneous c_i = 1
  for (const NodeId s : d.sources) EXPECT_DOUBLE_EQ(d.capability[s.value()], 0.0);
}

TEST(Deployment, HeterogeneousCapabilityBand) {
  Rng rng{3};
  const auto topo = small_topo(rng);
  DeploymentParams p;
  p.num_sources = 2;
  p.num_processors = 10;
  p.capability_min = 1.0;
  p.capability_max = 4.0;
  const auto d = make_deployment(topo, p, rng);
  for (const NodeId pr : d.processors) {
    EXPECT_GE(d.capability[pr.value()], 1.0);
    EXPECT_LE(d.capability[pr.value()], 4.0);
  }
}

TEST(Deployment, LatencyMatrixCoversRoles) {
  Rng rng{4};
  const auto topo = small_topo(rng);
  DeploymentParams p;
  p.num_sources = 3;
  p.num_processors = 6;
  const auto d = make_deployment(topo, p, rng);
  for (const NodeId s : d.sources) EXPECT_TRUE(d.latencies.contains(s));
  for (const NodeId pr : d.processors) EXPECT_TRUE(d.latencies.contains(pr));
  EXPECT_GT(d.latencies.latency(d.sources[0], d.processors[0]), 0.0);
}

TEST(Deployment, RejectsOversizedRoles) {
  Rng rng{5};
  Topology t{4};
  t.add_edge(NodeId{0}, NodeId{1}, 1.0);
  t.add_edge(NodeId{1}, NodeId{2}, 1.0);
  t.add_edge(NodeId{2}, NodeId{3}, 1.0);
  DeploymentParams p;
  p.num_sources = 3;
  p.num_processors = 3;
  EXPECT_THROW(make_deployment(t, p, rng), std::invalid_argument);
}

}  // namespace
}  // namespace cosmos::net
