// Spawning and supervising cosmos_noded worker processes (the driver side
// of multi-process federation). Plain fork/exec: the daemon binds its
// listener before serving, and wire::connect_to retries the
// connection-refused / socket-file-missing window, so no further startup
// handshake is needed.
#pragma once

#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/types.h>

namespace cosmos::node {

/// A spawned cosmos_noded process. The destructor terminate()s the child
/// with a bounded grace period (SIGTERM, then SIGKILL) if it has not been
/// wait()ed, so owning scopes never block past the timeout on a wedged
/// daemon.
class NodeProcess {
 public:
  NodeProcess() = default;
  NodeProcess(pid_t pid, std::string listen_address)
      : pid_(pid), listen_address_(std::move(listen_address)) {}
  ~NodeProcess();
  NodeProcess(NodeProcess&& other) noexcept { *this = std::move(other); }
  NodeProcess& operator=(NodeProcess&& other) noexcept;
  NodeProcess(const NodeProcess&) = delete;
  NodeProcess& operator=(const NodeProcess&) = delete;

  [[nodiscard]] pid_t pid() const noexcept { return pid_; }
  [[nodiscard]] const std::string& listen_address() const noexcept {
    return listen_address_;
  }
  [[nodiscard]] bool running() const noexcept { return pid_ > 0; }

  /// Blocks until the child exits; returns its exit code (or -signal when
  /// it died on one). Idempotent — returns the recorded status again.
  int wait();
  /// Non-blocking reap: returns the exit status if the child has exited
  /// (and records it), std::nullopt while it is still running. Idempotent
  /// after the child is reaped.
  std::optional<int> poll();
  /// Graceful stop: SIGTERM, then up to `grace_ms` of polling for the exit,
  /// then SIGKILL + reap. Returns the exit status (see wait()). Never
  /// blocks longer than the grace period plus one reap.
  int terminate(int grace_ms = 1'000);
  /// SIGKILLs the child (if still running) and reaps it. The reap is part
  /// of the contract, not a courtesy: until the kernel tears the process
  /// down, a dying daemon's listener backlog can still accept a re-dial to
  /// its endpoint — the connect succeeds against a process that will never
  /// serve, and the caller's session resets on a ghost. Returning only
  /// after waitpid() makes "the endpoint is free" a post-condition.
  void kill();
  /// The reaped status once wait()/poll()/terminate()/kill() has collected
  /// the child: exit code, or -signal when it died on one. std::nullopt
  /// while the child is unreaped (or was never spawned).
  [[nodiscard]] std::optional<int> exit_status() const noexcept {
    return waited_ ? std::optional<int>{exit_code_} : std::nullopt;
  }

 private:
  pid_t pid_ = -1;
  std::string listen_address_;
  int exit_code_ = 0;
  bool waited_ = false;
};

/// Forks + execs `noded_path --listen <listen_address> [extra_args...]`
/// (extra args: e.g. --fault-peer <spec> for chaos tests — a recovery
/// respawn passes none, so respawned workers run fault-free). Throws
/// std::runtime_error when the fork fails or the binary is missing.
[[nodiscard]] NodeProcess spawn_noded(
    const std::string& noded_path, const std::string& listen_address,
    const std::vector<std::string>& extra_args = {});

/// NodeProcess::kill for a bare pid the caller does not own as a
/// NodeProcess (e.g. a recovery respawn surfaced through on_respawn):
/// SIGKILL + blocking waitpid, with the same reap-barrier guarantee that
/// the pid's listener endpoint is free on return. A pid some other owner
/// already reaped (ECHILD) is treated as already gone. The chaos tests
/// used to open-code this kill+waitpid pair; it lives here now.
void kill_and_reap(pid_t pid);

/// The cosmos_noded binary to spawn: $COSMOS_NODED_PATH if set, else the
/// build-time COSMOS_NODED_PATH definition. Inline so the macro resolves
/// in the *calling* translation unit — federation tests and benches are
/// compiled with it pointing at the build's cosmos_noded target.
[[nodiscard]] inline std::string default_noded_path() {
  if (const char* env = std::getenv("COSMOS_NODED_PATH");
      env != nullptr && *env != '\0') {
    return env;
  }
#ifdef COSMOS_NODED_PATH
  return COSMOS_NODED_PATH;
#else
  throw std::runtime_error{
      "default_noded_path: set COSMOS_NODED_PATH to the cosmos_noded binary"};
#endif
}

}  // namespace cosmos::node
