// The sharded execution runtime: N worker threads, each owning a bounded
// task queue and exclusively executing the stream engines assigned to its
// shard. The single ingest driver matches and routes tuples, then hands
// per-engine batches to the owning shard; because every engine is pinned
// to exactly one shard and each shard queue is FIFO, an engine sees its
// input in exactly the order the driver dispatched it — per-shard ordering
// needs no locks inside the engines at all (shared-nothing parallelism).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/queues.h"
#include "runtime/stats.h"
#include "runtime/tuple_batch.h"

namespace cosmos::stream {
class Engine;
}

namespace cosmos::runtime {

struct RuntimeOptions {
  std::size_t shards = 1;
  /// Per-shard queue capacity in tasks; a full queue blocks the dispatcher
  /// (backpressure), it never drops.
  std::size_t queue_capacity = 64;
};

/// A pre-matched view of a shared source run: the rows of `run` one engine
/// should see. The run itself is shared (read-only) across every engine
/// task cut from it, so the dispatcher never copies tuple data — the
/// owning shard materializes the selection (or replays the whole run when
/// every row matched) on its own CPU.
struct RunSlice {
  std::shared_ptr<const TupleBatch> run;
  /// Ascending row indices into `run`; empty means every row.
  std::vector<std::uint32_t> rows;
};

/// Ingest stamp of the task the calling shard worker is currently
/// executing (0 on any other thread, or when the task was unstamped).
/// Engine result taps fire inside worker threads; this is how a produced
/// result inherits its input chunk's ingest time without the engines
/// knowing about chunks at all.
[[nodiscard]] std::uint64_t current_task_ingest_ns() noexcept;

class Runtime {
 public:
  /// One queue entry. Two shapes share it:
  ///  - engine task: an ordered list of same-stream runs (owned `runs`
  ///    and/or shared `slices`, replayed in that order) for one engine via
  ///    Engine::publish_batch;
  ///  - match task: a `match` hook the worker invokes instead — the
  ///    shard-side stage of the broker matching pipeline. Its CPU is
  ///    accounted to match_ns (inside busy_ns) under `engine_id`.
  struct Task {
    stream::Engine* engine = nullptr;
    std::vector<TupleBatch> runs;
    std::vector<RunSlice> slices;
    /// Opaque id the dispatcher assigns to the engine (e.g. the hosting
    /// node's id); per-engine counters in RuntimeStats are keyed by it.
    std::uint64_t engine_id = 0;
    /// When set, the worker runs this instead of replaying runs/slices.
    /// Exceptions are captured like engine failures (first_error()).
    std::function<void()> match;
    /// Ingest stamp (common/clock.h now_ns) of the driver chunk this task
    /// was cut from; 0 when unstamped. Published to the executing worker
    /// thread (current_task_ingest_ns) so engine result taps can measure
    /// ingest-to-delivery latency per tuple.
    std::uint64_t ingest_ns = 0;
  };

  explicit Runtime(RuntimeOptions options);
  /// Stops and joins outstanding workers.
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }

  /// Spawns the worker threads. Tasks dispatched before start() queue up.
  void start();

  /// Enqueues a task on `shard`, blocking while that queue is full; the
  /// blocked time is accounted to the shard's stall_ns. Single-dispatcher
  /// use is assumed (the driver); drain() must not run concurrently with
  /// dispatch().
  void dispatch(std::size_t shard, Task task);

  /// Blocks until every dispatched task has finished executing.
  void drain();

  /// Blocks until every task dispatched to `shard` has finished executing.
  /// The migration primitive: once a shard is drained, no task of any
  /// engine pinned there is in flight, so the dispatcher may re-pin such an
  /// engine to another shard without reordering or concurrent execution.
  void drain_shard(std::size_t shard);

  /// Closes the queues (remaining tasks still execute) and joins workers.
  /// Idempotent; stats remain readable afterwards.
  void stop();

  /// Per-shard and per-engine counters. Exact when the runtime is
  /// quiescent (after drain()/stop()); an in-flight snapshot otherwise
  /// (each shard's slice is still internally consistent — it is read under
  /// that shard's stats mutex).
  [[nodiscard]] RuntimeStats stats() const;

  /// First engine-side exception a worker caught, if any. A failing task
  /// never kills the process: the worker records the error, keeps its
  /// shard draining, and the dispatcher checks here after drain()/stop().
  [[nodiscard]] std::optional<std::string> first_error() const;

 private:
  struct Shard {
    explicit Shard(std::size_t capacity) : queue(capacity) {}
    BoundedQueue<Task> queue;
    std::thread worker;
    mutable std::mutex stats_mu;
    ShardStats stats;
    /// Per-engine counters for tasks this shard executed, keyed by
    /// Task::engine_id; guarded by stats_mu.
    std::unordered_map<std::uint64_t, EngineStats> engine_stats;
    std::string error;  ///< first task failure, guarded by stats_mu
    std::mutex drain_mu;
    std::condition_variable drain_cv;
    std::uint64_t submitted = 0;  ///< dispatcher-side, guarded by drain_mu
    std::uint64_t completed = 0;  ///< worker-side, guarded by drain_mu
  };

  void worker_loop(Shard& shard);

  std::vector<std::unique_ptr<Shard>> shards_;
  bool started_ = false;
};

}  // namespace cosmos::runtime
