// The operator-placement baseline of Section 4.2.
//
// Phase 1 (NiagaraCQ-style, [12]): collect all queries at one node and
// build a global operator graph, sharing identical selection operators —
// each distinct (stream, selection-signature) pair becomes one shared
// selection op executed at the stream's source (early filtering).
//
// Phase 2 ([3]-style): place each query's join/evaluation operator on a
// processor minimizing the rate-weighted latency of its inputs (from the
// shared selections) and its output (to the proxy), under the same
// (1+alpha) load caps as COSMOS, followed by local-improvement sweeps.
//
// The companion simulator accounts client-server traffic tuple by tuple:
// one filtered transfer per distinct (selection signature, consumer host)
// pair and one result transfer per query — the tightly-coupled
// communication pattern the paper contrasts with the pub/sub.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "net/latency_matrix.h"
#include "query/plan.h"
#include "query/query_spec.h"
#include "stream/engine.h"

namespace cosmos::opplace {

struct SourceStream {
  NodeId node;
  stream::Schema schema;
};

struct PlacementStats {
  std::size_t selection_signatures = 0;  ///< shared selection operators
  std::size_t evaluation_ops = 0;        ///< per-query join/eval operators
  double optimize_seconds = 0.0;         ///< phase 1 + phase 2 wall time
};

struct TrafficStats {
  double bytes = 0.0;
  double weighted_cost = 0.0;  ///< bytes * ms
};

class OperatorPlacementSystem {
 public:
  /// `sources` maps stream name -> origin/schema. `processors` host
  /// evaluation operators.
  OperatorPlacementSystem(std::map<std::string, SourceStream> sources,
                          std::vector<NodeId> processors,
                          const net::LatencyMatrix& lat, double alpha = 0.1);

  /// Runs both optimization phases for the query set (bulk, static — the
  /// paper's baseline does not support online changes).
  void deploy(std::span<const query::QuerySpec> queries, Rng& rng);

  /// Feeds one source tuple (global timestamp order); runs shared
  /// selections at the source, ships passing tuples to consumer hosts, and
  /// executes the per-query plans there. Result tuples are counted toward
  /// the proxy transfer.
  void push(const std::string& stream, const stream::Tuple& tuple);

  [[nodiscard]] const TrafficStats& traffic() const noexcept {
    return traffic_;
  }
  [[nodiscard]] const PlacementStats& stats() const noexcept { return stats_; }
  [[nodiscard]] NodeId host_of(QueryId q) const { return host_.at(q); }
  [[nodiscard]] std::size_t results_delivered() const noexcept {
    return results_delivered_;
  }

 private:
  struct Signature {
    std::string stream;
    stream::PredicatePtr filter;  ///< alias-stripped selection
    std::vector<NodeId> consumer_hosts;  ///< distinct, sorted
  };
  struct DeployedQuery {
    query::QuerySpec spec;
    NodeId host;
    std::unique_ptr<query::CompiledQuery> plan;
    std::string result_stream;
  };

  std::map<std::string, SourceStream> sources_;
  std::vector<NodeId> processors_;
  const net::LatencyMatrix* lat_;
  double alpha_;

  std::map<std::pair<std::string, std::string>, Signature> signatures_;
  std::map<NodeId, std::unique_ptr<stream::Engine>> engines_;
  std::vector<DeployedQuery> queries_;
  std::unordered_map<QueryId, NodeId> host_;
  PlacementStats stats_;
  TrafficStats traffic_;
  std::size_t results_delivered_ = 0;
};

}  // namespace cosmos::opplace
