#include "cosmos/cosmos.h"

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>

#include "adapt/controller.h"
#include "common/clock.h"
#include "obs/trace.h"
#include "wire/codec.h"

namespace cosmos::middleware {
namespace {

using query::QuerySpec;
using stream::Predicate;
using stream::PredicatePtr;

/// Single-alias conjuncts of `spec` for one alias, with the alias stripped
/// so the predicate evaluates against raw source-stream messages (the F
/// part of the p1 subscription).
PredicatePtr p1_filter(const QuerySpec& spec, const std::string& alias) {
  std::vector<PredicatePtr> conj;
  std::vector<PredicatePtr> all;
  if (!stream::collect_conjuncts(spec.where, all)) return Predicate::always_true();
  const std::unordered_map<std::string, std::string> strip{{alias, ""}};
  for (const auto& p : all) {
    // Keep conjuncts that reference only this alias.
    bool only_this = true;
    bool references = false;
    std::vector<PredicatePtr> leaves{p};
    const auto check = [&](const stream::FieldRef& f) {
      if (f.alias == alias) {
        references = true;
      } else if (!f.alias.empty()) {
        only_this = false;
      }
    };
    switch (p->kind()) {
      case Predicate::Kind::kCompareConst:
        check(static_cast<const stream::CompareConst&>(*p).lhs());
        break;
      case Predicate::Kind::kCompareField: {
        const auto& cf = static_cast<const stream::CompareField&>(*p);
        check(cf.lhs());
        check(cf.rhs());
        break;
      }
      case Predicate::Kind::kTimeBand: {
        const auto& tb = static_cast<const stream::TimeBand&>(*p);
        check(tb.newer());
        check(tb.older());
        break;
      }
      default:
        only_this = false;
        break;
    }
    if (only_this && references) {
      conj.push_back(query::rename_predicate_aliases(p, strip));
    }
  }
  return Predicate::conj(std::move(conj));
}

/// Attributes of `alias`'s stream that the unit needs (the P part of p1):
/// empty set = all.
std::set<std::string> p1_projection(const QuerySpec& spec,
                                    const std::string& alias,
                                    const stream::Schema& schema) {
  if (spec.select_all) return {};
  std::set<std::string> attrs;
  for (const auto& item : spec.select) {
    if (item.alias != alias) continue;
    if (item.is_wildcard()) return {};
    attrs.insert(item.field);
  }
  // Fields referenced by predicates must also travel.
  std::vector<PredicatePtr> all;
  stream::collect_conjuncts(spec.where, all);
  const auto add = [&](const stream::FieldRef& f) {
    if (f.alias == alias) attrs.insert(f.field);
  };
  for (const auto& p : all) {
    switch (p->kind()) {
      case Predicate::Kind::kCompareConst:
        add(static_cast<const stream::CompareConst&>(*p).lhs());
        break;
      case Predicate::Kind::kCompareField: {
        const auto& cf = static_cast<const stream::CompareField&>(*p);
        add(cf.lhs());
        add(cf.rhs());
        break;
      }
      case Predicate::Kind::kTimeBand: {
        const auto& tb = static_cast<const stream::TimeBand&>(*p);
        add(tb.newer());
        add(tb.older());
        break;
      }
      default:
        break;
    }
  }
  if (schema.index_of("timestamp").has_value()) attrs.insert("timestamp");
  return attrs;
}

}  // namespace

Cosmos::Cosmos(std::vector<NodeId> nodes, const net::LatencyMatrix& lat,
               bool enable_result_sharing)
    : nodes_(std::move(nodes)),
      broker_(nodes_, lat),
      enable_result_sharing_(enable_result_sharing) {}

void Cosmos::register_source(const std::string& stream, stream::Schema schema,
                             NodeId node) {
  broker_.advertise(stream, node, std::move(schema));
}

stream::Engine& Cosmos::engine_at(NodeId host) {
  auto& slot = engines_[host];
  if (!slot) slot = std::make_unique<stream::Engine>();
  return *slot;
}

void Cosmos::submit(const query::QuerySpec& spec, NodeId host,
                    ResultCallback cb) {
  query::validate(spec);
  if (queries_.contains(spec.id)) {
    throw std::invalid_argument{"Cosmos: duplicate query id"};
  }
  UserQuery uq{spec, std::move(cb), UINT32_MAX, SubscriptionId::invalid()};

  // Try to fold into an existing unit on the same host (Section 2.1).
  if (enable_result_sharing_)
  for (auto& [uid, unit] : units_) {
    if (unit.host != host) continue;
    auto merged = query::merge_queries(
        unit.spec, spec, QueryId{0x40000000u + next_unit_id_});
    if (!merged) continue;
    teardown_unit(unit);
    unit.spec = std::move(merged->merged);
    unit.members.push_back(spec.id);
    deploy_unit(unit);
    queries_.emplace(spec.id, std::move(uq));
    for (const QueryId member : unit.members) {
      wire_member(queries_.at(member), unit);
    }
    return;
  }

  // Fresh unit.
  Unit unit;
  unit.id = next_unit_id_++;
  unit.host = host;
  unit.spec = spec;
  unit.members = {spec.id};
  deploy_unit(unit);
  const auto uid = unit.id;
  units_.emplace(uid, std::move(unit));
  queries_.emplace(spec.id, std::move(uq));
  wire_member(queries_.at(spec.id), units_.at(uid));
}

void Cosmos::deploy_unit(Unit& unit) {
  auto& engine = engine_at(unit.host);
  // Input streams must exist on the host engine.
  for (const auto& src : unit.spec.sources) {
    if (!engine.has_stream(src.stream)) {
      engine.register_stream(src.stream, broker_.schema(src.stream));
    }
  }
  unit.result_stream = "cosmos.result." + std::to_string(unit.id) + ".v" +
                       std::to_string(++unit_version_);
  unit.plan = std::make_unique<query::CompiledQuery>(engine, unit.spec,
                                                     unit.result_stream);
  // p1 subscriptions: pull source data to the host.
  for (const auto& src : unit.spec.sources) {
    pubsub::Subscription sub;
    sub.subscriber = unit.host;
    sub.streams = {src.stream};
    sub.projection =
        p1_projection(unit.spec, src.alias, broker_.schema(src.stream));
    sub.filter = p1_filter(unit.spec, src.alias);
    unit.p1_subs.push_back(broker_.subscribe(std::move(sub)));
  }
  // Result stream: advertised at the host, published as the plan emits.
  broker_.advertise(unit.result_stream, unit.host,
                    unit.plan->result_schema());
  unit.result_tap = engine.attach(
      unit.result_stream, [this, rs = unit.result_stream](
                              const stream::Tuple& t) {
        // In run() mode this tap fires on a shard worker thread: park the
        // result for the driver, which owns the broker and the callbacks.
        // The executing task's ingest stamp rides along so the driver can
        // measure ingest-to-delivery latency at the p2 leg.
        if (active_results_ != nullptr) {
          active_results_->push({rs, t, runtime::current_task_ingest_ns()});
          return;
        }
        deliver_result(rs, t);
      });
}

void Cosmos::deliver_result(const std::string& result_stream,
                            const stream::Tuple& tuple) {
  broker_.publish(
      result_stream, tuple,
      [this](const pubsub::Subscription& sub, const pubsub::Message& msg) {
        const auto it = p2_owner_.find(sub.id);
        if (it == p2_owner_.end()) return;
        auto& uq = queries_.at(it->second);
        // Split projection happens consumer-side (cached at wire time).
        stream::Tuple out;
        out.ts = msg.tuple.ts;
        for (const auto i : uq.p2_keep) out.values.push_back(msg.tuple.at(i));
        uq.callback(it->second, out);
        ++results_delivered_;
      });
}

void Cosmos::teardown_unit(Unit& unit) {
  for (const auto sid : unit.p1_subs) broker_.unsubscribe(sid);
  unit.p1_subs.clear();
  if (unit.plan) {
    engine_at(unit.host).detach(unit.result_stream, unit.result_tap);
    // p2 subscriptions of members are re-wired by the caller.
    for (const QueryId member : unit.members) {
      const auto it = queries_.find(member);
      if (it == queries_.end() || !it->second.p2_sub.valid()) continue;
      broker_.unsubscribe(it->second.p2_sub);
      p2_owner_.erase(it->second.p2_sub);
      it->second.p2_sub = SubscriptionId::invalid();
    }
    unit.plan.reset();
  }
}

void Cosmos::wire_member(UserQuery& uq, Unit& unit) {
  uq.unit = unit.id;
  const auto split = query::make_result_split(uq.spec, unit.spec);
  pubsub::Subscription sub;
  sub.subscriber = uq.spec.proxy;
  sub.streams = {unit.result_stream};
  // Projection: the merged-result columns this user needs.
  const auto keep =
      query::split_projection_indices(split, unit.plan->result_schema());
  for (const auto i : keep) {
    sub.projection.insert(unit.plan->result_schema().field(i).name);
  }
  uq.p2_keep = keep;
  // Window bands / residual filters also need their columns on the wire.
  sub.filter = query::make_split_predicate(split);
  const auto sid = broker_.subscribe(std::move(sub));
  uq.p2_sub = sid;
  p2_owner_.emplace(sid, uq.spec.id);
}

double Cosmos::host_window_extent_ms(NodeId node) const {
  // Unbounded windows get a day's worth of lever arm — finite, but large
  // enough that the planner treats such state as expensive to move.
  constexpr double kUnboundedCapMs = 24.0 * 3'600'000.0;
  double ms = 0.0;
  for (const auto& [uid, unit] : units_) {
    if (unit.host != node) continue;
    for (const auto& src : unit.spec.sources) {
      ms += std::min(kUnboundedCapMs,
                     static_cast<double>(src.window.extent_ms()));
    }
  }
  return ms;
}

double Cosmos::host_state_bytes(NodeId node) const {
  double bytes = 0.0;
  for (const auto& [uid, unit] : units_) {
    if (unit.host == node && unit.plan) {
      bytes += static_cast<double>(
          wire::serialized_state_bytes(unit.plan->export_join_state()));
    }
  }
  return bytes;
}

namespace {

/// Completion barrier of one chunk's match stage: the driver arms it with
/// the number of match tasks it shipped and parks until every shard
/// reported back. Shared via shared_ptr so an unwinding driver never
/// leaves a worker with a dangling barrier.
struct MatchBarrier {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t pending = 0;

  void arm_one() {
    std::lock_guard lock{mu};
    ++pending;
  }
  void done() {
    {
      std::lock_guard lock{mu};
      --pending;
    }
    cv.notify_one();
  }
  void wait() {
    std::unique_lock lock{mu};
    cv.wait(lock, [this] { return pending == 0; });
  }
};

}  // namespace

void Cosmos::dispatch_chunk(
    runtime::Chunk&& chunk, runtime::Runtime& rt,
    const std::unordered_map<std::uint64_t, std::size_t>& shard_of,
    RunReport& report) {
  // --- match stage: ship each run to the shard owning its stream's broker
  // partition. The shard evaluates every subscription filter against every
  // row and accounts the link traffic into the partition's local stats —
  // the work that used to serialize on the driver thread.
  struct MatchJob {
    std::shared_ptr<const runtime::TupleBatch> run;
    std::vector<pubsub::BatchDelivery> deliveries;
    /// Set (before the barrier releases) when matching threw; the
    /// deliveries are then partial and the chunk must not be routed.
    std::string error;
  };
  const std::uint64_t ingest_ns = chunk.ingest_ns;
  const double dispatch_cpu0 = thread_cpu_seconds();
  auto barrier = std::make_shared<MatchBarrier>();
  std::vector<std::shared_ptr<MatchJob>> jobs;
  jobs.reserve(chunk.runs.size());
  for (runtime::TupleBatch& run : chunk.runs) {
    auto* part = broker_.partition(run.stream());
    if (part == nullptr) {
      // Same contract as push(): publishing an unadvertised stream is a
      // caller error, not a silent drop.
      throw std::invalid_argument{"BrokerNetwork: publish to unadvertised " +
                                  run.stream()};
    }
    auto job = std::make_shared<MatchJob>();
    job->run = std::make_shared<const runtime::TupleBatch>(std::move(run));
    jobs.push_back(job);
    if (part->subscription_count() == 0) continue;
    barrier->arm_one();
    runtime::Runtime::Task task;
    task.engine_id = part->publisher().value();
    task.ingest_ns = ingest_ns;
    task.match = [job, part, barrier] {
      // The barrier must release even when matching throws — but only
      // after the failure is recorded in the job: the worker's own error
      // slot is written after unwinding finishes, which would race the
      // driver's post-barrier fail-fast check.
      struct Release {
        MatchBarrier* barrier;
        ~Release() { barrier->done(); }
      } release{barrier.get()};
      try {
        part->match_batch(*job->run, job->deliveries);
      } catch (const std::exception& e) {
        job->error = e.what();
        throw;  // the runtime also records it as the shard's failure
      }
    };
    rt.dispatch(shard_of.at(task.engine_id), std::move(task));
  }
  report.driver.dispatch_cpu_seconds += thread_cpu_seconds() - dispatch_cpu0;

  const TimePoint wait0 = Clock::now();
  {
    const obs::Span span{"match_wait", "driver", jobs.size()};
    barrier->wait();
  }
  report.driver.match_wait_seconds += seconds_since(wait0);
  // Fail fast: a failed match task leaves its job's deliveries partial;
  // nothing derived from this chunk can be trusted. The per-job error is
  // published before the barrier releases, so this check cannot miss a
  // failure of this chunk's own match tasks.
  for (const auto& job : jobs) {
    if (!job->error.empty()) {
      throw std::runtime_error{"Cosmos: shard matching failed: " +
                               job->error};
    }
  }
  if (const auto error = rt.first_error()) {
    // A straggling engine-task failure from an earlier chunk.
    throw std::runtime_error{"Cosmos: shard execution failed: " + *error};
  }

  // --- route stage (driver): union of matched rows per subscriber — as in
  // push(), the host engine must see a tuple exactly once however many of
  // its subscriptions matched (plans re-apply their own filters). The
  // deliveries reference the shared runs, so routing only shuffles row
  // indices; tuple data is never copied on the driver.
  const double route_cpu0 = thread_cpu_seconds();
  std::optional<obs::Span> route_span;
  route_span.emplace("route", "driver", jobs.size());
  // Per-engine ordered slice lists for this chunk; std::map keeps dispatch
  // order deterministic.
  std::map<NodeId, std::vector<runtime::RunSlice>> per_node;
  std::map<NodeId, std::vector<char>> mask_of;
  for (const auto& job : jobs) {
    mask_of.clear();
    for (const auto& d : job->deliveries) {
      if (p2_owner_.contains(d.sub->id)) continue;
      auto& mask =
          mask_of.try_emplace(d.sub->subscriber, job->run->size(), char{0})
              .first->second;
      for (const auto row : d.rows) mask[row] = 1;
    }
    for (const auto& [node, mask] : mask_of) {
      const auto eit = engines_.find(node);
      if (eit == engines_.end() ||
          !eit->second->has_stream(job->run->stream())) {
        continue;
      }
      std::size_t matched_rows = 0;
      for (const char m : mask) matched_rows += m != 0;
      if (matched_rows == 0) continue;
      std::vector<std::uint32_t> rows;
      if (matched_rows < job->run->size()) {  // empty rows = whole run
        rows.reserve(matched_rows);
        for (std::uint32_t r = 0; r < mask.size(); ++r) {
          if (mask[r] != 0) rows.push_back(r);
        }
      }
      per_node[node].push_back({job->run, std::move(rows)});
    }
  }
  route_span.reset();
  report.driver.route_cpu_seconds += thread_cpu_seconds() - route_cpu0;

  // --- dispatch stage: hand each engine its slices, in engine-id order.
  const double dispatch_cpu1 = thread_cpu_seconds();
  const obs::Span dispatch_span{"dispatch", "driver", per_node.size()};
  for (auto& [node, slices] : per_node) {
    runtime::Runtime::Task task;
    task.engine = engines_.at(node).get();
    task.slices = std::move(slices);
    task.engine_id = node.value();
    task.ingest_ns = ingest_ns;
    rt.dispatch(shard_of.at(node.value()), std::move(task));
  }
  ++report.chunks;
  report.driver.dispatch_cpu_seconds += thread_cpu_seconds() - dispatch_cpu1;
}

Cosmos::RunReport Cosmos::run(const std::vector<runtime::TraceEvent>& events,
                              const RunOptions& options) {
  // The trace session (when enabled) must be destroyed after the workers
  // have joined: its destructor drains every thread's span ring and writes
  // the Chrome trace file. Declared first so it dies last.
  obs::TraceSession trace{options.trace_path};
  trace.add_process_name(0, "driver");
  // Unwind-safety: on any throw below, destruction must run in this order —
  // join the workers (rt), only then clear active_results_ (guard), only
  // then destroy the buffer they were pushing into (results). Hence the
  // declaration order results -> guard -> rt.
  runtime::MpscBuffer<ResultEvent> results;
  struct ResultModeGuard {
    Cosmos& sys;
    ~ResultModeGuard() { sys.active_results_ = nullptr; }
  } guard{*this};
  runtime::Runtime rt{{options.shards, options.queue_capacity}};
  // Pin every deployed engine to a shard: explicit pins first (mod shard
  // count), then round-robin over the remaining hosts in id order
  // (engines_ is an ordered map), so the assignment is deterministic.
  std::unordered_map<std::uint64_t, std::size_t> shard_of;
  std::size_t next_shard = 0;
  for (const auto& [node, engine] : engines_) {
    const auto pinned = options.pin.find(node);
    shard_of.emplace(node.value(), pinned != options.pin.end()
                                       ? pinned->second % rt.shards()
                                       : next_shard++ % rt.shards());
  }
  // Pin every broker partition's owner too, keyed by the publishing node:
  // the match stage of each chunk runs on the owner's shard. A publisher
  // that also hosts an engine keeps that shard (one owner per node id); a
  // pure source node continues the round-robin. Partition owners live in
  // the same map as engines, so the adaptation planner can migrate hot
  // matching work exactly like hot engines.
  for (auto* part : broker_.partitions()) {
    const NodeId publisher = part->publisher();
    if (shard_of.contains(publisher.value())) continue;
    const auto pinned = options.pin.find(publisher);
    shard_of.emplace(publisher.value(), pinned != options.pin.end()
                                            ? pinned->second % rt.shards()
                                            : next_shard++ % rt.shards());
  }

  // The adaptation loop (src/adapt/): samples per-engine load between
  // chunks and re-pins engines off overloaded shards. Pointless with one
  // shard, so it stays dormant there even when enabled.
  std::optional<adapt::AdaptationController> adaptation;
  if (options.adapt.enabled && rt.shards() > 1) {
    adaptation.emplace(
        options.adapt, rt, shard_of,
        [this](std::uint64_t engine) {
          return host_window_extent_ms(NodeId{
              static_cast<NodeId::value_type>(engine)});
        },
        [this](std::uint64_t engine) {
          return host_state_bytes(
              NodeId{static_cast<NodeId::value_type>(engine)});
        });
  }

  RunReport report;
  const std::size_t results_before = results_delivered_;
  obs::MetricsRegistry reg;
  auto& e2e = reg.histogram("e2e_latency_ns");
  std::vector<ResultEvent> scratch;
  const auto drain_results = [&] {
    results.drain_into(scratch);
    if (scratch.empty()) return;
    const double cpu0 = thread_cpu_seconds();
    const obs::Span span{"deliver", "driver", scratch.size()};
    const std::uint64_t now = now_ns();
    for (const auto& ev : scratch) {
      // Ingest-to-delivery latency of the chunk this result came from,
      // measured here because p2 delivery completes on the driver thread.
      if (ev.ingest_ns != 0 && now > ev.ingest_ns) e2e.record(now - ev.ingest_ns);
      deliver_result(ev.stream, ev.tuple);
    }
    report.driver.deliver_cpu_seconds += thread_cpu_seconds() - cpu0;
  };

  active_results_ = &results;
  rt.start();
  const double driver_cpu_start = thread_cpu_seconds();
  const TimePoint ingest_start = Clock::now();
  runtime::Driver driver{
      {options.batch_size, options.tick_ms},
      [&](runtime::Chunk&& chunk) {
        // Fail fast: once any shard has faulted, its engine state is
        // suspect — stop feeding and delivering instead of handing the
        // user results produced after the failure.
        if (const auto error = rt.first_error()) {
          throw std::runtime_error{"Cosmos: shard execution failed: " +
                                   *error};
        }
        const stream::Timestamp chunk_last_ts = chunk.last_ts;
        dispatch_chunk(std::move(chunk), rt, shard_of, report);
        drain_results();  // keep the result buffer bounded in practice
        if (adaptation) adaptation->on_chunk(chunk_last_ts);
      }};
  for (const auto& ev : events) driver.push(ev.stream, ev.tuple);
  driver.finish();
  const TimePoint drain_start = Clock::now();
  rt.drain();
  report.drain_seconds = seconds_since(drain_start);
  drain_results();
  report.ingest_seconds = seconds_since(ingest_start);
  report.driver_cpu_seconds = thread_cpu_seconds() - driver_cpu_start;
  rt.stop();
  if (const auto error = rt.first_error()) {
    throw std::runtime_error{"Cosmos: shard execution failed: " + *error};
  }

  report.tuples = driver.tuples();
  report.results_delivered = results_delivered_ - results_before;
  report.stats = rt.stats();
  report.e2e_latency = e2e.snapshot();
  report.metrics = reg.snapshot();
  if (adaptation) report.adaptation = adaptation->report();
  return report;
}

void Cosmos::push(const std::string& stream, const stream::Tuple& tuple) {
  // Several units at one host may subscribe to the same stream; the host's
  // engine must see the tuple exactly once (plans re-apply their own
  // filters).
  std::set<NodeId> fed;
  broker_.publish(stream, tuple,
                  [this, &fed](const pubsub::Subscription& sub,
                               const pubsub::Message& msg) {
                    if (p2_owner_.contains(sub.id)) return;
                    if (!fed.insert(sub.subscriber).second) return;
                    auto& engine = engine_at(sub.subscriber);
                    if (engine.has_stream(msg.stream)) {
                      engine.publish(msg.stream, msg.tuple);
                    }
                  });
}

}  // namespace cosmos::middleware
