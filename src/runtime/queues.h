// Inter-thread channels of the execution runtime.
//
// BoundedQueue is the ingest-side channel between the trace driver and the
// shard workers: bounded, blocking on both ends, so a slow shard exerts
// backpressure on the driver instead of dropping or buffering without
// limit (SPSC in the runtime's use, safe for MPMC).
//
// MpscBuffer is the result-side channel from shard workers back to the
// driver: unbounded and never blocking on push, which is what makes the
// driver->shard->driver cycle deadlock-free (a shard can always finish its
// batch and emit results even while the driver is parked on a full shard
// queue).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace cosmos::runtime {

/// Bounded FIFO with blocking push (backpressure) and blocking pop.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Blocks while the queue is full; never drops. Returns false (and
  /// discards `value`) only if the queue was closed.
  bool push(T value) {
    std::unique_lock lock{mu_};
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; `value` is untouched when the queue is full.
  bool try_push(T& value) {
    {
      std::lock_guard lock{mu_};
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed *and* drained, so
  /// close() lets consumers finish the remaining items first.
  std::optional<T> pop() {
    std::unique_lock lock{mu_};
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Result of a bounded wait: distinguishes "nothing yet" from "queue is
  /// finished" so a periodic consumer (e.g. a heartbeat-emitting sender
  /// loop) can keep ticking without spinning on a closed queue.
  enum class WaitResult { kItem, kTimeout, kClosed };

  /// Blocks up to `timeout` for an item. kItem fills `out`; kTimeout means
  /// the queue is still open but empty; kClosed means closed *and* drained.
  template <typename Rep, typename Period>
  WaitResult pop_for(T& out, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock{mu_};
    not_empty_.wait_for(lock, timeout,
                        [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return closed_ ? WaitResult::kClosed
                                       : WaitResult::kTimeout;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return WaitResult::kItem;
  }

  std::optional<T> try_pop() {
    std::optional<T> value;
    {
      std::lock_guard lock{mu_};
      if (items_.empty()) return std::nullopt;
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain then end.
  void close() {
    {
      std::lock_guard lock{mu_};
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t depth() const {
    std::lock_guard lock{mu_};
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool closed() const {
    std::lock_guard lock{mu_};
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

/// Unbounded multi-producer buffer drained wholesale by one consumer.
/// push() never blocks beyond the mutex; per-producer FIFO order is
/// preserved (drained batches concatenate pushes in arrival order).
template <typename T>
class MpscBuffer {
 public:
  /// Returns false (and drops `value`) once the buffer is closed —
  /// teardown-safe for producers that may outlive the consumer's interest.
  bool push(T value) {
    std::lock_guard lock{mu_};
    if (closed_) return false;
    items_.push_back(std::move(value));
    return true;
  }

  /// Moves everything accumulated so far into `out` (cleared first).
  /// Items buffered before close() stay drainable after it.
  void drain_into(std::vector<T>& out) {
    out.clear();
    std::lock_guard lock{mu_};
    out.swap(items_);
  }

  /// Rejects all future pushes; already-buffered items remain drainable.
  void close() {
    std::lock_guard lock{mu_};
    closed_ = true;
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock{mu_};
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock{mu_};
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<T> items_;
  bool closed_ = false;
};

}  // namespace cosmos::runtime
