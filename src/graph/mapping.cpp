#include "graph/mapping.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace cosmos::graph {
namespace {

constexpr double kEps = 1e-9;

/// WEC contribution of vertex vi if it were mapped to `target`, counting
/// only edges whose other endpoint is already placed.
double vertex_cost(const QueryGraph& qg, const NetworkGraph& ng,
                   std::span<const NetworkGraph::VertexIndex> assignment,
                   QueryGraph::VertexIndex vi,
                   NetworkGraph::VertexIndex target) {
  double cost = 0.0;
  for (const auto& e : qg.neighbors(vi)) {
    const auto other = assignment[e.to];
    if (other == NetworkGraph::kNone) continue;
    cost += e.weight * ng.distance(target, other);
  }
  return cost;
}

double excess(double load, double cap) noexcept {
  return std::max(0.0, load - cap);
}

/// The paper's move admissibility: the move must not violate load balance,
/// or must strictly improve an existing violation.
bool move_allowed(double weight, double load_from, double cap_from,
                  double load_to, double cap_to) noexcept {
  if (load_to + weight <= cap_to + kEps) return true;
  const double before = excess(load_from, cap_from) + excess(load_to, cap_to);
  const double after = excess(load_from - weight, cap_from) +
                       excess(load_to + weight, cap_to);
  return after < before - kEps;
}

}  // namespace

double weighted_edge_cut(
    const QueryGraph& qg, const NetworkGraph& ng,
    std::span<const NetworkGraph::VertexIndex> assignment) {
  double wec = 0.0;
  for (QueryGraph::VertexIndex i = 0; i < qg.size(); ++i) {
    for (const auto& e : qg.neighbors(i)) {
      if (e.to <= i) continue;  // count each edge once
      const auto a = assignment[i];
      const auto b = assignment[e.to];
      if (a == NetworkGraph::kNone || b == NetworkGraph::kNone) continue;
      wec += e.weight * ng.distance(a, b);
    }
  }
  return wec;
}

std::vector<double> load_per_vertex(
    const QueryGraph& qg, const NetworkGraph& ng,
    std::span<const NetworkGraph::VertexIndex> assignment) {
  std::vector<double> load(ng.size(), 0.0);
  for (QueryGraph::VertexIndex i = 0; i < qg.size(); ++i) {
    if (assignment[i] != NetworkGraph::kNone) {
      load[assignment[i]] += qg.vertex(i).weight;
    }
  }
  return load;
}

std::vector<double> load_caps(const QueryGraph& qg, const NetworkGraph& ng,
                              double alpha) {
  const double wq = qg.total_query_weight();
  const double wn = ng.total_capability();
  std::vector<double> caps(ng.size(), 0.0);
  for (NetworkGraph::VertexIndex j = 0; j < ng.size(); ++j) {
    if (ng.vertex(j).assignable && wn > 0) {
      caps[j] = (1.0 + alpha) * ng.vertex(j).capability * wq / wn;
    }
  }
  return caps;
}

NetworkGraph::VertexIndex pinned_target(const QueryVertex& v,
                                        const NetworkGraph& ng) {
  if (!v.is_n()) {
    throw std::invalid_argument{"pinned_target: not an n-vertex"};
  }
  if (v.clu >= 0) {
    const auto k = static_cast<NetworkGraph::VertexIndex>(v.clu);
    if (k >= ng.size() || !ng.vertex(k).assignable) {
      throw std::invalid_argument{"pinned_target: clu out of range"};
    }
    return k;
  }
  const auto k = ng.find_by_node(v.node);
  if (k == NetworkGraph::kNone) {
    throw std::invalid_argument{"pinned_target: no anchor for node " +
                                std::to_string(v.node.value())};
  }
  return k;
}

double remap_gain(const QueryGraph& qg, const NetworkGraph& ng,
                  std::span<const NetworkGraph::VertexIndex> assignment,
                  QueryGraph::VertexIndex vertex,
                  NetworkGraph::VertexIndex to) {
  const auto cur = assignment[vertex];
  return vertex_cost(qg, ng, assignment, vertex, cur) -
         vertex_cost(qg, ng, assignment, vertex, to);
}

NetworkGraph::VertexIndex place_one(
    const QueryGraph& qg, const NetworkGraph& ng,
    std::span<const NetworkGraph::VertexIndex> assignment,
    QueryGraph::VertexIndex vertex, std::span<const double> load,
    std::span<const double> caps) {
  const double w = qg.vertex(vertex).weight;
  NetworkGraph::VertexIndex best = NetworkGraph::kNone;
  double best_cost = std::numeric_limits<double>::infinity();
  NetworkGraph::VertexIndex best_violating = NetworkGraph::kNone;
  double best_violation = std::numeric_limits<double>::infinity();
  double best_violation_cost = std::numeric_limits<double>::infinity();

  for (NetworkGraph::VertexIndex k = 0; k < ng.size(); ++k) {
    if (!ng.vertex(k).assignable) continue;
    const double cost = vertex_cost(qg, ng, assignment, vertex, k);
    if (load[k] + w <= caps[k] + kEps) {
      if (cost < best_cost) {
        best_cost = cost;
        best = k;
      }
    } else {
      const double violation = load[k] + w - caps[k];
      if (violation < best_violation - kEps ||
          (violation < best_violation + kEps &&
           cost < best_violation_cost)) {
        best_violation = violation;
        best_violation_cost = cost;
        best_violating = k;
      }
    }
  }
  return best != NetworkGraph::kNone ? best : best_violating;
}

MappingResult map_query_graph(const QueryGraph& qg, const NetworkGraph& ng,
                              const MappingParams& params, Rng& rng) {
  MappingResult out;
  out.assignment.assign(qg.size(), NetworkGraph::kNone);
  if (ng.total_capability() <= 0) {
    throw std::invalid_argument{"map_query_graph: no assignable capability"};
  }

  const std::vector<double> caps = load_caps(qg, ng, params.alpha);
  std::vector<double> load(ng.size(), 0.0);

  // Network constraint: pin n-vertices.
  std::vector<QueryGraph::VertexIndex> q_vertices;
  for (QueryGraph::VertexIndex i = 0; i < qg.size(); ++i) {
    if (qg.vertex(i).is_n()) {
      out.assignment[i] = pinned_target(qg.vertex(i), ng);
      load[out.assignment[i]] += qg.vertex(i).weight;
    } else {
      q_vertices.push_back(i);
    }
  }

  // Greedy phase: heaviest q-vertices first.
  std::stable_sort(q_vertices.begin(), q_vertices.end(),
                   [&qg](auto a, auto b) {
                     return qg.vertex(a).weight > qg.vertex(b).weight;
                   });
  for (const auto vi : q_vertices) {
    const auto k =
        place_one(qg, ng, out.assignment, vi, load, caps);
    out.assignment[vi] = k;
    load[k] += qg.vertex(vi).weight;
    if (load[k] > caps[k] + kEps) out.load_feasible = false;
  }

  out.wec = weighted_edge_cut(qg, ng, out.assignment);
  if (!params.refine || q_vertices.empty()) return out;

  // ---- refinement (Algorithm 2, lines 2-20) ----
  std::vector<NetworkGraph::VertexIndex> best_assignment = out.assignment;
  double best_wec = out.wec;

  // Best admissible move for one vertex under the current state.
  const auto best_move = [&](QueryGraph::VertexIndex vi)
      -> std::pair<double, NetworkGraph::VertexIndex> {
    const auto cur = out.assignment[vi];
    const double w = qg.vertex(vi).weight;
    const double cur_cost = vertex_cost(qg, ng, out.assignment, vi, cur);
    double max_gain = -std::numeric_limits<double>::infinity();
    NetworkGraph::VertexIndex to = NetworkGraph::kNone;
    for (NetworkGraph::VertexIndex k = 0; k < ng.size(); ++k) {
      if (k == cur || !ng.vertex(k).assignable) continue;
      if (!move_allowed(w, load[cur], caps[cur], load[k], caps[k])) continue;
      const double gain =
          cur_cost - vertex_cost(qg, ng, out.assignment, vi, k);
      if (gain > max_gain) {
        max_gain = gain;
        to = k;
      }
    }
    return {max_gain, to};
  };

  for (std::size_t round = 0; round < params.max_outer_rounds; ++round) {
    ++out.outer_rounds;
    out.assignment = best_assignment;
    load = load_per_vertex(qg, ng, out.assignment);
    double cur_wec = best_wec;
    const double round_start_wec = best_wec;

    std::vector<char> matched(qg.size(), 0);

    // Lazy max-heap of candidate moves: entries may be stale; on pop the
    // vertex's best move is recomputed and either applied (still the global
    // max) or re-queued. Vertices with no load-admissible target go to a
    // blocked list and are reconsidered after each successful move (the move
    // frees capacity at its source vertex) — this mirrors the paper's
    // rescan-per-move without its O(n^2) cost in the common case.
    using Entry = std::pair<double, QueryGraph::VertexIndex>;
    std::priority_queue<Entry> heap;
    std::vector<QueryGraph::VertexIndex> blocked;
    std::vector<std::uint8_t> block_count(qg.size(), 0);
    constexpr std::uint8_t kMaxRequeues = 8;
    for (const auto vi : q_vertices) {
      const auto [gain, to] = best_move(vi);
      if (to != NetworkGraph::kNone) {
        heap.emplace(gain, vi);
      } else {
        blocked.push_back(vi);
      }
    }

    while (!heap.empty()) {
      const auto [queued_gain, vi] = heap.top();
      heap.pop();
      if (matched[vi]) continue;
      const auto [gain, to] = best_move(vi);
      if (to == NetworkGraph::kNone) {
        if (block_count[vi] < kMaxRequeues) {
          ++block_count[vi];
          blocked.push_back(vi);
        }
        continue;
      }
      if (!heap.empty() && gain < heap.top().first - kEps) {
        heap.emplace(gain, vi);  // no longer the best; requeue fresh value
        continue;
      }
      // Apply the move (negative gains allowed: hill climbing).
      matched[vi] = 1;
      const auto from = out.assignment[vi];
      out.assignment[vi] = to;
      load[from] -= qg.vertex(vi).weight;
      load[to] += qg.vertex(vi).weight;
      cur_wec -= gain;
      ++out.moves;
      if (cur_wec < best_wec - kEps) {
        best_wec = cur_wec;
        best_assignment = out.assignment;
      }
      // Freed capacity at `from`: blocked vertices may be movable now.
      if (!blocked.empty()) {
        for (const auto bv : blocked) {
          if (!matched[bv]) heap.emplace(0.0, bv);  // stale key; recomputed
        }
        blocked.clear();
      }
    }

    if (best_wec >= round_start_wec - kEps) break;  // converged
  }

  out.assignment = std::move(best_assignment);
  out.wec = weighted_edge_cut(qg, ng, out.assignment);  // exact, not drifted
  (void)rng;
  return out;
}

}  // namespace cosmos::graph
