// Attribute-predicate index over compiled subscription filters: the
// sublinear half of BrokerPartition matching.
//
// Linear matching evaluates every subscription's compiled filter on every
// row — Θ(subs × rows) even when almost nothing matches. This index makes
// the common filter shapes probeable by indexing the *predicates
// themselves*: at add() time the filter's top-level conjunction is
// decomposed (stream::split_const_conjuncts) and one anchor is indexed —
//
//  - a single-column `== constant` conjunct goes into a per-column hash
//    table keyed by the constant (numeric constants through their double
//    view, mirroring the hash join's cross-type bucketing; strings in
//    their own table);
//  - otherwise the filter's range conjuncts (<, <=, >, >=) on its first
//    range column merge into one [lo, hi] interval held in that column's
//    sorted interval lists: two-sided bands sorted ascending by lo with
//    the column's widest band tracked (a probe stabs the window
//    [v - max_width, v] with two binary searches — output-sensitive even
//    when band endpoints cluster), lo-only intervals sorted ascending by
//    lo (prefix run), hi-only intervals sorted descending by hi (prefix
//    run); every run entry is a true anchor match up to boundary
//    strictness;
//  - everything else (may-throw lenient filters, OR/NOT trees, filters
//    with no usable constant conjunct, statically ill-typed trees) stays
//    on a small scan-list fallback the partition evaluates in full.
//
// A probe yields *candidates*: slots whose anchor conjuncts provably hold
// on the row. Anchors are re-verified with exact Value semantics, so the
// double sort/hash keys only ever over-approximate (int constants beyond
// 2^53 bucket by their rounded double but never false-match). The caller
// then runs each candidate's compiled residual — the filter minus the
// anchored conjuncts, in original order — which keeps match results
// identical to evaluating the full filter row by row. Known divergence, by
// design (the same shape as the hash join's): on schema-violating rows (a
// runtime value type contradicting the declared column type, or rows
// narrower than the schema) full evaluation may throw where the index
// reports no match; indexing is gated on statically well-typed
// conjunctions, so conforming rows cannot tell the difference. The linear
// path stays available behind BrokerPartition's use_index flag as the
// differential oracle.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/tuple_batch.h"
#include "stream/compiled_predicate.h"

namespace cosmos::pubsub {

class SubscriptionIndex {
 public:
  /// Stable slot id in the owning partition's subscription table.
  using Slot = std::uint32_t;

  enum class Placement : std::uint8_t { kEquality, kRange, kScan };

  /// `schema` is the partition schema filters are resolved against; it
  /// must outlive the index.
  explicit SubscriptionIndex(const stream::Schema* schema)
      : schema_(schema) {}

  /// Indexes the filter of the subscription occupying `slot` (which must
  /// not currently be indexed). `compiled` is the partition's lenient
  /// compilation of the same filter — its may_throw() routes unresolvable
  /// filters to the scan list. Returns where the filter landed.
  Placement add(Slot slot, const stream::PredicatePtr& filter,
                const stream::CompiledPredicate& compiled);
  /// Un-indexes `slot` (incremental: touches only the one bucket/list the
  /// slot anchors in). No-op for unknown slots.
  void remove(Slot slot);

  [[nodiscard]] std::size_t equality_entries() const noexcept {
    return eq_count_;
  }
  [[nodiscard]] std::size_t range_entries() const noexcept {
    return range_count_;
  }
  /// Fallback slots, ascending; the partition evaluates their full
  /// compiled filters on every row.
  [[nodiscard]] const std::vector<Slot>& scan_slots() const noexcept {
    return scan_;
  }
  /// Compiled residual of an indexed slot (conjuncts minus the anchor, in
  /// original order), or nullptr when the anchor covered the whole filter.
  [[nodiscard]] const stream::CompiledPredicate* residual(Slot slot) const {
    const auto it = residuals_.find(slot);
    return it == residuals_.end() ? nullptr : &it->second;
  }

  /// Scalar probe: appends every indexed slot whose anchor holds on `row`
  /// (unsorted; candidates still owe their residual check). Scan-list
  /// slots are not appended.
  void probe(const stream::CompiledPredicate::Row& row,
             std::vector<Slot>& out) const;

  /// Batch probe, column-at-a-time: candidates[slot] receives the
  /// ascending row ids whose anchor held, `touched` the slots that got any
  /// (unsorted). `candidates` is the caller's scratch, sized to at least
  /// the slot-table size with every list empty on entry; the caller clears
  /// the touched lists after use.
  void probe_batch(const runtime::TupleBatch& batch,
                   std::vector<std::vector<std::uint32_t>>& candidates,
                   std::vector<Slot>& touched) const;

 private:
  struct EqEntry {
    Slot slot = 0;
    stream::Value constant;  ///< exact re-verify (double keys may collide)
  };
  struct RangeEntry {
    Slot slot = 0;
    double key = 0.0;  ///< double view of the anchoring endpoint
    bool has_lo = false;
    bool has_hi = false;
    stream::CmpOp lo_op = stream::CmpOp::kGt;  ///< kGt or kGe
    stream::CmpOp hi_op = stream::CmpOp::kLt;  ///< kLt or kLe
    stream::Value lo;
    stream::Value hi;
  };
  struct ColumnIndex {
    std::unordered_map<double, std::vector<EqEntry>> eq_num;
    std::unordered_map<std::string, std::vector<EqEntry>> eq_str;
    /// Two-sided bands, ascending by lo key. A stab only visits keys in
    /// [v - max_band_width, v]: any band containing v has lo >= v - width.
    /// max_band_width never shrinks on removal (stale widths only widen
    /// the window — a superset — never miss).
    std::vector<RangeEntry> bands;
    double max_band_width = 0.0;
    std::vector<RangeEntry> lower;  ///< lo-only, ascending by key
    std::vector<RangeEntry> upper;  ///< hi-only, descending by key
    [[nodiscard]] bool empty() const noexcept {
      return eq_num.empty() && eq_str.empty() && bands.empty() &&
             lower.empty() && upper.empty();
    }
  };
  enum class Where : std::uint8_t {
    kEqNum,
    kEqStr,
    kBands,
    kLower,
    kUpper,
    kScan
  };
  struct Locator {
    Where where = Where::kScan;
    std::uint32_t col = 0;
    double num_key = 0.0;
    std::string str_key;
  };

  [[nodiscard]] static bool range_matches(const RangeEntry& e,
                                          const stream::Value& v) {
    // v is numeric here (string probe values never reach the lists).
    if (e.has_lo && !stream::apply_cmp(e.lo_op, v.compare(e.lo))) {
      return false;
    }
    if (e.has_hi && !stream::apply_cmp(e.hi_op, v.compare(e.hi))) {
      return false;
    }
    return true;
  }

  /// Calls fn(slot) for every anchor in `cidx` that holds on `v`.
  template <typename Fn>
  void for_candidates(const ColumnIndex& cidx, const stream::Value& v,
                      Fn&& fn) const {
    if (v.type() == stream::ValueType::kString) {
      // Numeric anchors never match a string value (the oracle throws on
      // such schema-violating rows; see the divergence note above).
      const auto it = cidx.eq_str.find(v.as_string());
      if (it != cidx.eq_str.end()) {
        for (const EqEntry& e : it->second) fn(e.slot);
      }
      return;
    }
    const double dv = v.as_double();
    if (!cidx.eq_num.empty()) {
      const auto it = cidx.eq_num.find(dv);
      if (it != cidx.eq_num.end()) {
        for (const EqEntry& e : it->second) {
          if (v.compare(e.constant) == 0) fn(e.slot);
        }
      }
    }
    // Double keys are monotone views of the exact bounds, so every window
    // below is a superset of the true matches and the exact re-verify
    // decides. NaN probes compare false with every key, degrading each
    // window to the whole list — the re-verify then reproduces the
    // oracle's NaN semantics (NaN compares "greater").
    if (!cidx.bands.empty()) {
      // A band containing v satisfies lo <= v and lo >= hi - width >=
      // v - max_band_width.
      const auto first = std::lower_bound(
          cidx.bands.begin(), cidx.bands.end(), dv - cidx.max_band_width,
          [](const RangeEntry& e, double val) { return e.key < val; });
      const auto last = std::upper_bound(
          first, cidx.bands.end(), dv,
          [](double val, const RangeEntry& e) { return val < e.key; });
      for (auto it = first; it != last; ++it) {
        if (range_matches(*it, v)) fn(it->slot);
      }
    }
    // lower (lo-only, ascending): a true match needs lo <= v => key <= dv.
    const auto lo_end = std::upper_bound(
        cidx.lower.begin(), cidx.lower.end(), dv,
        [](double val, const RangeEntry& e) { return val < e.key; });
    for (auto it = cidx.lower.begin(); it != lo_end; ++it) {
      if (range_matches(*it, v)) fn(it->slot);
    }
    // upper (hi-only, descending): a true match needs hi >= v => key >= dv.
    const auto hi_end = std::upper_bound(
        cidx.upper.begin(), cidx.upper.end(), dv,
        [](double val, const RangeEntry& e) { return val > e.key; });
    for (auto it = cidx.upper.begin(); it != hi_end; ++it) {
      if (range_matches(*it, v)) fn(it->slot);
    }
  }

  const stream::Schema* schema_;
  /// Value column id (or FieldSlot::kTsCol for the row timestamp) to the
  /// anchors hosted on that column.
  std::unordered_map<std::uint32_t, ColumnIndex> columns_;
  std::vector<Slot> scan_;  ///< ascending
  std::unordered_map<Slot, stream::CompiledPredicate> residuals_;
  std::unordered_map<Slot, Locator> locators_;
  std::size_t eq_count_ = 0;
  std::size_t range_count_ = 0;
};

}  // namespace cosmos::pubsub
