#include "adapt/controller.h"

#include <utility>

namespace cosmos::adapt {

AdaptationController::AdaptationController(
    const AdaptOptions& options, runtime::Runtime& rt,
    std::unordered_map<std::uint64_t, std::size_t>& shard_of,
    WindowExtent window_ms, Migrator::StateProbe measured_state)
    : options_(options),
      rt_(&rt),
      shard_of_(&shard_of),
      window_ms_(std::move(window_ms)),
      monitor_(options.ewma_alpha),
      planner_(options),
      migrator_(rt, shard_of, std::move(measured_state)) {}

void AdaptationController::on_chunk(stream::Timestamp now) {
  // The owner decides whether adaptation applies (Cosmos::run constructs a
  // controller only when enabled with >1 shard); no second gate here.
  if (!clock_started_) {
    // First chunk: seed the monitor's baseline, start the period clock.
    clock_started_ = true;
    last_sample_ms_ = now;
    monitor_.sample(rt_->stats(), *shard_of_, now);
    return;
  }
  if (now - last_sample_ms_ < options_.adapt_every_ms) return;
  last_sample_ms_ = now;

  monitor_.sample(rt_->stats(), *shard_of_, now);
  ++report_.samples;
  for (auto& load : monitor_.loads()) {
    const double window = window_ms_ ? window_ms_(load.engine) : 0.0;
    load.state_bytes =
        load.tuples_per_ms * window * options_.bytes_per_state_tuple;
  }
  const PlanResult plan = planner_.plan(monitor_.loads(), rt_->shards());
  if (plan.moves.empty()) return;

  if (report_.rounds == 0) report_.imbalance_before = plan.imbalance_before;
  report_.imbalance_after = plan.imbalance_after;
  ++report_.rounds;
  migrator_.apply(plan.moves, report_);
  // The pinning changed: refresh the monitor's shard attribution so the
  // next plan starts from the post-migration layout.
  for (auto& load : monitor_.loads()) {
    const auto it = shard_of_->find(load.engine);
    if (it != shard_of_->end()) load.shard = it->second;
  }
}

}  // namespace cosmos::adapt
