#include "common/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cosmos {

ZipfDistribution::ZipfDistribution(std::size_t n, double theta) {
  if (n == 0) throw std::invalid_argument{"ZipfDistribution: n must be > 0"};
  if (theta < 0.0) {
    throw std::invalid_argument{"ZipfDistribution: theta must be >= 0"};
  }
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[r] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::sample(Rng& rng) const noexcept {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t rank) const noexcept {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace cosmos
