// Recursive-descent parser for the paper's CQL subset:
//
//   SELECT * | item[, item...]
//   FROM Stream [Now|Range n Unit|Unbounded] alias [, ...]
//   [WHERE predicate]
//
// item       := alias '.' field | alias '.' '*' | field
// predicate  := disjunctions/conjunctions/NOT over comparisons
// comparison := operand (< <= > >= = !=) operand
// operand    := alias '.' field | field | number | 'string'
#pragma once

#include <string>

#include "query/query_spec.h"

namespace cosmos::cql {

/// Parses a query; throws ParseError on malformed input. `id`/`proxy` are
/// stamped into the returned spec; `text` is preserved.
[[nodiscard]] query::QuerySpec parse_query(const std::string& text,
                                           QueryId id = QueryId::invalid(),
                                           NodeId proxy = NodeId::invalid());

}  // namespace cosmos::cql
