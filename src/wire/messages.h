// Typed payloads of every federation frame, one struct + encode/decode
// pair per frame type. encode_* produces a complete Frame; decode_*
// validates the frame type, decodes the payload and rejects trailing bytes
// — the single source of truth for each payload's layout, shared by the
// driver (cosmos/federation.cpp) and the node side (node/site.cpp) so the
// two can never drift apart.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "wire/codec.h"

namespace cosmos::wire {

/// Driver -> node, first frame of a session: the node's identity in the
/// federation plus its transport knobs (the emulated one-way link delay it
/// applies to its own outgoing frames, and its local runtime shard count).
struct HelloMsg {
  std::uint32_t worker_index = 0;
  std::uint32_t shards = 1;
  std::int64_t send_delay_ms = 0;
};

struct HelloAckMsg {
  std::string info;  ///< free-form daemon identification (pid etc.)
};

/// Node list + latency matrix + broker options: everything a node needs to
/// rebuild the exact BrokerNetwork overlay the driver has, so worker-side
/// matching and traffic accounting are byte-identical to in-process runs.
struct TopologyMsg {
  std::vector<NodeId> participants;   ///< broker participants, in order
  std::vector<NodeId> members;        ///< latency-matrix members, in order
  std::vector<double> dense;          ///< row-major member-to-member ms
  bool use_index = true;              ///< subscription-index matching
};

struct RegisterStreamMsg {
  std::string stream;
  NodeId publisher;
  stream::Schema schema;
};

struct SubscribeMsg {
  pubsub::Subscription sub;  ///< installed under its existing id
};

/// One deployed execution unit: the node rebuilds the CompiledQuery from
/// (spec, result_stream) — plan construction is deterministic, so remote
/// and local plans are identical.
struct DeployUnitMsg {
  std::uint32_t unit_id = 0;
  NodeId host;
  std::string result_stream;
  query::QuerySpec spec;
};

struct MatchRequestMsg {
  std::uint64_t job = 0;  ///< driver-assigned sequence, echoed in the reply
  runtime::TupleBatch batch;
};

struct MatchResponseMsg {
  std::uint64_t job = 0;
  /// Matched ascending row indices per subscription, in the partition's
  /// first-match order (same order BrokerPartition::match_batch appends).
  std::vector<std::pair<SubscriptionId, std::vector<std::uint32_t>>>
      deliveries;
};

struct ExecuteMsg {
  NodeId engine;  ///< hosting node of the target engine
  runtime::TupleBatch batch;  ///< pre-routed rows, in engine input order
};

struct ResultEventMsg {
  std::string stream;  ///< unit result stream
  stream::Tuple tuple;
};

struct ResultMsg {
  std::vector<ResultEventMsg> events;  ///< in emission order per engine
};

struct WatermarkMsg {
  stream::Timestamp watermark = 0;
};

struct FlushMsg {
  std::uint64_t seq = 0;
};
struct FlushAckMsg {
  std::uint64_t seq = 0;
};

struct MigrateOutMsg {
  NodeId engine;
};

/// One unit's serialized window-join state.
struct UnitStateMsg {
  std::uint32_t unit_id = 0;
  std::vector<stream::WindowJoinOp::State> joins;
};

struct StateHandoffMsg {
  NodeId engine;
  std::vector<UnitStateMsg> units;
};

struct MigrateInMsg {
  NodeId engine;
  std::vector<DeployUnitMsg> units;
  std::vector<UnitStateMsg> state;  ///< parallel to `units` by unit_id
};

struct MigrateAckMsg {
  NodeId engine;
};

struct TrafficReportMsg {
  pubsub::TrafficStats traffic;
};

struct ErrorMsg {
  std::string message;
};

[[nodiscard]] Frame encode_hello(const HelloMsg& m);
[[nodiscard]] HelloMsg decode_hello(const Frame& f);
[[nodiscard]] Frame encode_hello_ack(const HelloAckMsg& m);
[[nodiscard]] HelloAckMsg decode_hello_ack(const Frame& f);
[[nodiscard]] Frame encode_topology(const TopologyMsg& m);
[[nodiscard]] TopologyMsg decode_topology(const Frame& f);
[[nodiscard]] Frame encode_register_stream(const RegisterStreamMsg& m);
[[nodiscard]] RegisterStreamMsg decode_register_stream(const Frame& f);
[[nodiscard]] Frame encode_subscribe(const SubscribeMsg& m);
[[nodiscard]] SubscribeMsg decode_subscribe(const Frame& f);
[[nodiscard]] Frame encode_deploy_unit(const DeployUnitMsg& m);
[[nodiscard]] DeployUnitMsg decode_deploy_unit(const Frame& f);
[[nodiscard]] Frame encode_match_request(const MatchRequestMsg& m);
[[nodiscard]] MatchRequestMsg decode_match_request(const Frame& f);
[[nodiscard]] Frame encode_match_response(const MatchResponseMsg& m);
[[nodiscard]] MatchResponseMsg decode_match_response(const Frame& f);
[[nodiscard]] Frame encode_execute(const ExecuteMsg& m);
[[nodiscard]] ExecuteMsg decode_execute(const Frame& f);
[[nodiscard]] Frame encode_result(const ResultMsg& m);
[[nodiscard]] ResultMsg decode_result(const Frame& f);
[[nodiscard]] Frame encode_watermark(const WatermarkMsg& m);
[[nodiscard]] WatermarkMsg decode_watermark(const Frame& f);
[[nodiscard]] Frame encode_flush(const FlushMsg& m);
[[nodiscard]] FlushMsg decode_flush(const Frame& f);
[[nodiscard]] Frame encode_flush_ack(const FlushAckMsg& m);
[[nodiscard]] FlushAckMsg decode_flush_ack(const Frame& f);
[[nodiscard]] Frame encode_migrate_out(const MigrateOutMsg& m);
[[nodiscard]] MigrateOutMsg decode_migrate_out(const Frame& f);
[[nodiscard]] Frame encode_state_handoff(const StateHandoffMsg& m);
[[nodiscard]] StateHandoffMsg decode_state_handoff(const Frame& f);
[[nodiscard]] Frame encode_migrate_in(const MigrateInMsg& m);
[[nodiscard]] MigrateInMsg decode_migrate_in(const Frame& f);
[[nodiscard]] Frame encode_migrate_ack(const MigrateAckMsg& m);
[[nodiscard]] MigrateAckMsg decode_migrate_ack(const Frame& f);
[[nodiscard]] Frame encode_traffic_request();
[[nodiscard]] Frame encode_traffic_report(const TrafficReportMsg& m);
[[nodiscard]] TrafficReportMsg decode_traffic_report(const Frame& f);
[[nodiscard]] Frame encode_error(const ErrorMsg& m);
[[nodiscard]] ErrorMsg decode_error(const Frame& f);
[[nodiscard]] Frame encode_bye();

}  // namespace cosmos::wire
