#include "graph/edge_model.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace cosmos::graph {

EdgeModel::EdgeModel(const query::SubstreamSpace& space) : space_(&space) {
  empty_mask_ = BitVector{space.size()};
  for (std::size_t i = 0; i < space.size(); ++i) {
    const SubstreamId s{static_cast<SubstreamId::value_type>(i)};
    auto [it, inserted] = masks_.try_emplace(space.origin(s), space.size());
    it->second.set(i);
  }
}

const BitVector& EdgeModel::source_mask(NodeId node) const {
  const auto it = masks_.find(node);
  return it == masks_.end() ? empty_mask_ : it->second;
}

double EdgeModel::qq_weight(const QueryVertex& a, const QueryVertex& b) const {
  if (a.interest.empty() || b.interest.empty()) return 0.0;
  return a.interest.weighted_intersection(b.interest, space_->rates());
}

double EdgeModel::qn_weight(const QueryVertex& q, const QueryVertex& n) const {
  double w = q.proxy_rates.toward(n.node);
  if (!q.interest.empty()) {
    const BitVector& mask = source_mask(n.node);
    if (!mask.empty()) {
      w += q.interest.weighted_intersection(mask, space_->rates());
    }
  }
  return w;
}

std::vector<std::pair<NodeId, double>> EdgeModel::rate_by_source(
    const QueryVertex& q) const {
  std::map<NodeId, double> acc;
  if (!q.interest.empty()) {
    for (const std::size_t bit : q.interest.set_bits()) {
      const SubstreamId s{static_cast<SubstreamId::value_type>(bit)};
      acc[space_->origin(s)] += space_->rate(s);
    }
  }
  return {acc.begin(), acc.end()};
}

QueryVertex to_query_vertex(const query::InterestProfile& p) {
  QueryVertex v;
  v.kind = QVertexKind::kQuery;
  v.weight = p.load;
  v.interest = p.interest;
  if (p.proxy.valid()) v.proxy_rates.add(p.proxy, p.output_rate);
  v.state_size = p.state_size;
  v.queries = {p.query};
  return v;
}

QueryGraph build_query_graph(std::span<const QueryVertex> items,
                             const EdgeModel& model,
                             const QueryGraphBuildParams& params,
                             const std::function<int(NodeId)>* clu_of,
                             Rng& rng) {
  QueryGraph g;

  // q-vertices first (index == position in `items`).
  for (const auto& item : items) g.add_vertex(item);

  // n-vertices and q-n edges. If a vertex's source node is also a proxy of
  // one of its members, add_edge folds both rates into a single edge (the
  // paper's "only one edge connects the query and that node").
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (const auto& [src, rate] : model.rate_by_source(items[i])) {
      const auto nv = g.ensure_network_vertex(src);
      g.add_edge(static_cast<QueryGraph::VertexIndex>(i), nv, rate);
    }
    for (const auto& [proxy, rate] : items[i].proxy_rates.rates) {
      if (!proxy.valid() || rate <= 0) continue;
      const auto nv = g.ensure_network_vertex(proxy);
      g.add_edge(static_cast<QueryGraph::VertexIndex>(i), nv, rate);
    }
  }

  // Label n-vertices with covering child clusters.
  if (clu_of != nullptr) {
    for (QueryGraph::VertexIndex i = 0; i < g.size(); ++i) {
      auto& v = g.vertex(i);
      if (v.is_n()) v.clu = (*clu_of)(v.node);
    }
  }

  // q-q overlap edges.
  const std::size_t n = items.size();
  if (n <= params.exact_pair_threshold) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double w = model.qq_weight(items[i], items[j]);
        if (w > 0) {
          g.set_edge(static_cast<QueryGraph::VertexIndex>(i),
                     static_cast<QueryGraph::VertexIndex>(j), w);
        }
      }
    }
    return g;
  }

  // Sparsified construction: an inverted substream->vertex index proposes
  // high-overlap candidates; exact weights are computed for candidates and
  // only the top max_overlap_degree edges per vertex are kept. Dropping the
  // lightest edges biases WEC the least (see DESIGN.md).
  std::vector<std::vector<std::uint32_t>> inverted(model.space().size());
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t bit : items[i].interest.set_bits()) {
      inverted[bit].push_back(static_cast<std::uint32_t>(i));
    }
  }
  std::vector<std::uint32_t> candidates;
  std::vector<char> seen(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    candidates.clear();
    const auto bits = items[i].interest.set_bits();
    std::size_t probes = 0;
    while (candidates.size() < params.candidate_sample &&
           probes < 4 * params.candidate_sample && !bits.empty()) {
      ++probes;
      const auto& list = inverted[bits[rng.next_below(bits.size())]];
      if (list.empty()) continue;
      const std::uint32_t other = list[rng.next_below(list.size())];
      if (other == i || seen[other]) continue;
      seen[other] = 1;
      candidates.push_back(other);
    }
    std::vector<std::pair<double, std::uint32_t>> weighted;
    weighted.reserve(candidates.size());
    for (const std::uint32_t c : candidates) {
      seen[c] = 0;
      const double w = model.qq_weight(items[i], items[c]);
      if (w > 0) weighted.emplace_back(w, c);
    }
    const std::size_t keep =
        std::min(params.max_overlap_degree, weighted.size());
    std::partial_sort(weighted.begin(),
                      weighted.begin() + static_cast<std::ptrdiff_t>(keep),
                      weighted.end(), std::greater<>());
    for (std::size_t k = 0; k < keep; ++k) {
      g.set_edge(static_cast<QueryGraph::VertexIndex>(i), weighted[k].second,
                 weighted[k].first);
    }
  }
  return g;
}

}  // namespace cosmos::graph
