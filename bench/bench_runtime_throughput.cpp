// Runtime throughput: single-threaded push() vs. the sharded run() mode on
// the paper's prototype workload (Section 4.1 scale knobs, Section 4.2
// query shape): wide-area node set, sensor-station streams spread over the
// sources, and windowed join queries placed greedily over the processors.
//
// Every configuration must produce identical per-query result counts —
// the runtime's ordering guarantee — and the interesting number is
// tuples/s. Two measures are reported:
//   wall  — end-to-end wall clock (shows real scaling only when the host
//           has >= shards cores);
//   crit  — the parallel critical path, max(driver busy, slowest shard
//           busy), from the runtime's measured per-shard counters. This is
//           the hardware-independent scaling measure: it is what the wall
//           clock converges to given enough cores.
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "cosmos/cosmos.h"
#include "sim/sensor_trace.h"

using namespace cosmos;
using namespace cosmos::bench;

namespace {

/// Windowed join over two distinct stations: a wide range window on S1
/// (the scan work), a short one on S2, a time band that keeps the result
/// cardinality low, and a field-field comparison. The band and comparison
/// reference both aliases, so nothing is pushed below the join — every S2
/// arrival scans S1's full window.
query::QuerySpec make_query(QueryId id, NodeId proxy, std::size_t stations,
                            Rng& rng) {
  const std::size_t a = rng.next_below(stations);
  std::size_t b = rng.next_below(stations);
  while (b == a) b = rng.next_below(stations);
  query::QuerySpec spec;
  spec.id = id;
  spec.proxy = proxy;
  const auto range_min = 120 + rng.next_below(180);  // 120..299 minutes
  spec.sources = {
      {sim::station_stream_name(a), "S1",
       stream::WindowSpec::range_millis(
           static_cast<std::int64_t>(range_min) * 60'000)},
      {sim::station_stream_name(b), "S2",
       stream::WindowSpec::range_millis(120'000)}};
  spec.select = {{"S1", "snowHeight"},
                 {"S1", "timestamp"},
                 {"S2", "snowHeight"},
                 {"S2", "timestamp"}};
  spec.where = stream::Predicate::conj(
      {stream::Predicate::time_band({"S2", "timestamp"}, {"S1", "timestamp"},
                                    45'000),
       stream::Predicate::cmp(
           stream::FieldRef{"S1", "snowHeight"}, stream::CmpOp::kGt,
           stream::FieldRef{"S2", "snowHeight"}),
       stream::Predicate::cmp(
           stream::FieldRef{"S1", "temperature"}, stream::CmpOp::kGt,
           stream::FieldRef{"S2", "temperature"})});
  return spec;
}

struct ConfigResult {
  std::string name;
  double wall_s = 0.0;
  double crit_s = 0.0;
  double driver_s = 0.0;  ///< driver-thread CPU (the serial stage)
  std::map<QueryId, std::size_t> per_query;
  std::size_t results = 0;
  runtime::RuntimeStats stats;  ///< empty for the push configuration
  obs::HistogramSnapshot e2e;   ///< ingest->delivery latency (run modes)
};

}  // namespace

int main() {
  const double scale = env_scale(0.25);
  const std::uint64_t seed = env_seed(42);
  const std::size_t kNodes = 30;
  const std::size_t kSources = 5;
  const std::size_t kStations = 20;
  const std::size_t readings =
      std::max<std::size_t>(360, static_cast<std::size_t>(1440 * scale));
  const std::size_t nq =
      std::max<std::size_t>(150, static_cast<std::size_t>(600 * scale));

  Rng rng{seed};
  const auto topo = net::make_wide_area_mesh(kNodes, 6, rng);
  std::vector<NodeId> all;
  for (std::size_t i = 0; i < kNodes; ++i) {
    all.push_back(NodeId{static_cast<NodeId::value_type>(i)});
  }
  const net::LatencyMatrix lat{topo, all};
  const std::vector<NodeId> sources(all.begin(), all.begin() + kSources);
  const std::vector<NodeId> processors(all.begin() + kSources, all.end());

  sim::SensorTraceParams tp;
  tp.stations = kStations;
  tp.readings_per_station = readings;
  Rng trng{seed + 1};
  const auto trace = sim::make_sensor_trace(tp, trng);
  std::vector<runtime::TraceEvent> events;
  events.reserve(trace.size());
  for (const auto& r : trace) {
    events.push_back({sim::station_stream_name(r.station), r.tuple});
  }

  Rng qrng{seed + 2};
  std::vector<query::QuerySpec> specs;
  for (std::size_t i = 0; i < nq; ++i) {
    specs.push_back(make_query(
        QueryId{static_cast<QueryId::value_type>(i)},
        processors[qrng.next_below(processors.size())], kStations, qrng));
  }
  // Greedy latency-aware placement with a load cap (the leaf-coordinator
  // rule, as in the Fig 11 bench).
  std::vector<std::size_t> host_of(specs.size());
  {
    std::vector<double> load(processors.size(), 0.0);
    const double cap =
        1.1 * static_cast<double>(nq) / static_cast<double>(processors.size());
    for (const auto& spec : specs) {
      std::size_t best = 0;
      double best_cost = 1e300;
      for (std::size_t p = 0; p < processors.size(); ++p) {
        if (load[p] + 1.0 > cap) continue;
        double c = lat.latency(processors[p], spec.proxy);
        for (const auto& src : spec.sources) {
          const std::size_t st = std::stoul(src.stream.substr(7)) - 1;
          c += lat.latency(processors[p], sources[st % kSources]);
        }
        if (c < best_cost) {
          best_cost = c;
          best = p;
        }
      }
      load[best] += 1.0;
      host_of[spec.id.value()] = best;
    }
  }

  const auto build = [&](std::map<QueryId, std::size_t>& per_query) {
    auto sys = std::make_unique<middleware::Cosmos>(all, lat);
    for (std::size_t st = 0; st < kStations; ++st) {
      sys->register_source(sim::station_stream_name(st), sim::sensor_schema(),
                           sources[st % kSources]);
    }
    for (const auto& spec : specs) {
      sys->submit(spec, processors[host_of[spec.id.value()]],
                  [&per_query](QueryId q, const stream::Tuple&) {
                    ++per_query[q];
                  });
    }
    return sys;
  };

  std::printf("# runtime throughput (scale=%.2f seed=%llu stations=%zu "
              "readings=%zu queries=%zu tuples=%zu cores=%u)\n",
              scale, static_cast<unsigned long long>(seed), kStations,
              readings, nq, events.size(),
              std::thread::hardware_concurrency());
  std::printf("# crit = max(driver busy, slowest shard busy): the scaling "
              "measure independent of host core count\n");
  std::printf("# driver-s = driver-thread CPU (serial stage); match-s = "
              "shard CPU in broker matching (was driver work before the "
              "partitioned pipeline); mwait-s = driver wall time parked at "
              "the match barrier (overlaps shards)\n");
  std::printf("%-12s %9s %12s %9s %12s %10s %9s %9s %9s %9s %9s\n", "config",
              "wall-s", "wall-tup/s", "crit-s", "crit-tup/s", "results",
              "driver-s", "shard-s", "match-s", "mwait-s", "stall-s");

  std::vector<ConfigResult> rows;

  {
    ConfigResult row;
    row.name = "push";
    auto sys = build(row.per_query);
    const Stopwatch watch;
    for (const auto& ev : events) sys->push(ev.stream, ev.tuple);
    row.wall_s = watch.seconds();
    row.crit_s = row.wall_s;  // fully serial
    for (const auto& [q, n] : row.per_query) row.results += n;
    std::printf("%-12s %9.3f %12.0f %9.3f %12.0f %10zu %9s %9s %9s %9s %9s\n",
                row.name.c_str(), row.wall_s,
                static_cast<double>(events.size()) / row.wall_s, row.crit_s,
                static_cast<double>(events.size()) / row.crit_s, row.results,
                "-", "-", "-", "-", "-");
    std::fflush(stdout);
    rows.push_back(std::move(row));
  }

  for (const std::size_t shards : {1, 2, 4, 8}) {
    ConfigResult row;
    row.name = "run:" + std::to_string(shards) + "-shard";
    auto sys = build(row.per_query);
    middleware::Cosmos::RunOptions opts;
    opts.shards = shards;
    opts.batch_size = 256;
    opts.queue_capacity = 64;
    opts.tick_ms = 30 * 60'000;
    const Stopwatch watch;
    const auto report = sys->run(events, opts);
    row.wall_s = watch.seconds();
    row.stats = report.stats;
    row.e2e = report.e2e_latency;
    const double stall = report.stats.total_stall_seconds();
    const double driver_busy = report.driver_cpu_seconds;
    row.driver_s = driver_busy;
    row.crit_s = std::max(driver_busy, report.stats.max_busy_seconds());
    for (const auto& [q, n] : row.per_query) row.results += n;
    std::printf(
        "%-12s %9.3f %12.0f %9.3f %12.0f %10zu %9.3f %9.3f %9.3f %9.3f "
        "%9.3f\n",
        row.name.c_str(), row.wall_s,
        static_cast<double>(events.size()) / row.wall_s, row.crit_s,
        static_cast<double>(events.size()) / row.crit_s, row.results,
        driver_busy, report.stats.max_busy_seconds(),
        report.stats.total_match_seconds(), report.driver.match_wait_seconds,
        stall);
    std::printf("#   driver breakdown: route=%.3fs dispatch=%.3fs "
                "deliver=%.3fs (CPU; chunk cutting is the remainder)\n",
                report.driver.route_cpu_seconds,
                report.driver.dispatch_cpu_seconds,
                report.driver.deliver_cpu_seconds);
    std::fflush(stdout);
    rows.push_back(std::move(row));
  }

  // Correctness gate: every configuration must agree per query.
  bool identical = true;
  for (const auto& row : rows) {
    if (row.per_query != rows[0].per_query) {
      identical = false;
      std::printf("!! per-query result mismatch: %s vs %s\n", row.name.c_str(),
                  rows[0].name.c_str());
    }
  }
  std::printf("per-query result counts identical across configs: %s\n",
              identical ? "yes" : "NO");

  const auto* one = &rows[1];   // run:1-shard
  const auto* four = &rows[3];  // run:4-shard
  std::printf("speedup 4-shard vs 1-shard: %.2fx crit-path, %.2fx wall\n",
              one->crit_s / four->crit_s, one->wall_s / four->wall_s);

  // Per-engine load profile of the 4-shard run (new per-engine counters):
  // how concentrated the work is — the adaptation subsystem's raw signal.
  {
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    for (const auto& e : four->stats.engines) {
      total_ns += e.busy_ns;
      max_ns = std::max(max_ns, e.busy_ns);
    }
    std::printf("engines=%zu hottest-engine share of busy time: %.1f%%\n",
                four->stats.engines.size(),
                total_ns > 0 ? 100.0 * static_cast<double>(max_ns) /
                                   static_cast<double>(total_ns)
                             : 0.0);
  }

  // Single-shard engine CPU efficiency: tuples per second of shard busy
  // CPU (all engine + match work runs on the one shard). This is the
  // compiled/batched execution gate — the per-tuple cost of the operator
  // hot path, independent of shard-count scaling.
  const double engine_tuples_per_cpu_s_1shard =
      static_cast<double>(events.size()) / one->stats.max_busy_seconds();
  std::printf("1-shard engine CPU: %.0f tuples per busy-CPU second "
              "(%.1f us/tuple)\n",
              engine_tuples_per_cpu_s_1shard,
              1e6 * one->stats.max_busy_seconds() /
                  static_cast<double>(events.size()));

  // End-to-end tuple latency (ingest stamp at chunk cut -> p2 delivery on
  // the driver thread). Note the virtual-clock batching: a tuple waits for
  // its whole chunk, so this measures pipeline residency, not wire delay.
  const auto p_us = [](const ConfigResult& r, double p) {
    return static_cast<double>(r.e2e.percentile(p)) / 1000.0;
  };
  std::printf("4-shard e2e latency: p50=%.0fus p95=%.0fus p99=%.0fus "
              "(%zu samples)\n",
              p_us(*four, 50.0), p_us(*four, 95.0), p_us(*four, 99.0),
              static_cast<std::size_t>(four->e2e.count));

  write_bench_json(
      "runtime_throughput",
      {{"tuples", static_cast<double>(events.size())},
       {"e2e_latency_p50_us_4shard", p_us(*four, 50.0)},
       {"e2e_latency_p99_us_4shard", p_us(*four, 99.0)},
       {"push_tuples_per_s",
        static_cast<double>(events.size()) / rows[0].wall_s},
       {"crit_tuples_per_s_1shard",
        static_cast<double>(events.size()) / one->crit_s},
       {"crit_tuples_per_s_4shard",
        static_cast<double>(events.size()) / four->crit_s},
       {"crit_speedup_4shard_vs_1shard", one->crit_s / four->crit_s},
       {"engine_tuples_per_cpu_s_1shard", engine_tuples_per_cpu_s_1shard},
       {"driver_cpu_seconds_4shard", four->driver_s},
       {"shard_match_cpu_seconds_4shard",
        four->stats.total_match_seconds()},
       {"results_identical", identical ? 1.0 : 0.0}});
  return identical ? 0 : 1;
}
