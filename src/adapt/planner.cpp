#include "adapt/planner.h"

#include <algorithm>

namespace cosmos::adapt {

PlanResult MigrationPlanner::plan(const std::vector<EngineLoad>& loads,
                                  std::size_t shards) const {
  PlanResult result;
  if (shards < 2 || loads.empty()) return result;

  std::vector<double> shard_load(shards, 0.0);
  std::vector<EngineLoad> model = loads;
  for (auto& e : model) {
    if (e.shard >= shards) e.shard = 0;
    shard_load[e.shard] += e.cpu_seconds;
  }
  result.imbalance_before = LoadMonitor::imbalance(shard_load);
  result.imbalance_after = result.imbalance_before;
  if (result.imbalance_before < options_.imbalance_threshold) return result;

  for (std::size_t round = 0; round < options_.max_moves_per_round; ++round) {
    const auto hot = static_cast<std::size_t>(
        std::max_element(shard_load.begin(), shard_load.end()) -
        shard_load.begin());
    const double crit = shard_load[hot];
    // Highest shard load excluding `hot` — what the critical path becomes
    // if the hot shard sheds enough work.
    double second = 0.0;
    for (std::size_t s = 0; s < shards; ++s) {
      if (s != hot) second = std::max(second, shard_load[s]);
    }

    const EngineLoad* best = nullptr;
    std::size_t best_to = 0;
    double best_net = options_.min_gain_seconds;
    double best_gain = 0.0;
    for (const auto& e : model) {
      if (e.shard != hot || e.cpu_seconds <= 0.0) continue;
      // Moving the *whole remaining shard* is pointless; keeping at least
      // one engine behind is implied by gain turning negative, not by a
      // special case.
      for (std::size_t to = 0; to < shards; ++to) {
        if (to == hot) continue;
        const double new_crit =
            std::max({second, crit - e.cpu_seconds,
                      shard_load[to] + e.cpu_seconds});
        const double gain = crit - new_crit;
        const double net =
            gain - e.state_bytes * options_.migration_cost_per_byte;
        // Strict >: engines arrive sorted by id, so on equal net the
        // lowest engine id (and lowest target shard) wins — deterministic.
        if (net > best_net) {
          best = &e;
          best_to = to;
          best_net = net;
          best_gain = gain;
        }
      }
    }
    if (best == nullptr) break;

    result.moves.push_back(
        {best->engine, hot, best_to, best_gain, best->state_bytes});
    shard_load[hot] -= best->cpu_seconds;
    shard_load[best_to] += best->cpu_seconds;
    // Update the model so later rounds see the new pinning.
    for (auto& e : model) {
      if (e.engine == best->engine) {
        e.shard = best_to;
        break;
      }
    }
  }
  result.imbalance_after = result.moves.empty()
                               ? result.imbalance_before
                               : LoadMonitor::imbalance(shard_load);
  return result;
}

}  // namespace cosmos::adapt
