// Satellite coverage for the runtime's backpressure observability: a
// tiny-queue workload with a slow consumer must populate ShardStats'
// stall_ns and max_queue_depth, and repeated Runtime::stats() snapshots
// must be monotone (counters only grow between quiescent points). Also
// pins down RuntimeStats::engine()'s binary search over the id-sorted
// per-engine rows.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "runtime/runtime.h"
#include "runtime/stats.h"
#include "stream/engine.h"

namespace cosmos::runtime {
namespace {

using stream::Engine;
using stream::Schema;
using stream::Tuple;
using stream::Value;
using stream::ValueType;

Schema one_field() { return Schema{{{"v", ValueType::kInt}}}; }

TEST(BackpressureStats, StallAndQueueDepthPopulateUnderTinyQueues) {
  Engine engine;
  engine.register_stream("S", one_field());
  // Slow consumer: every tuple burns a little wall time so the dispatcher
  // outruns the single capacity-1 shard queue and must block.
  engine.attach("S", [](const Tuple&) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  });

  Runtime rt{{1, 1}};  // one shard, queue capacity 1
  rt.start();
  // Timestamps must advance batch to batch: the engine rejects
  // out-of-order publishes.
  const auto make_batch = [](int b) {
    TupleBatch batch{"S"};
    for (int i = 0; i < 4; ++i) {
      const int ts = b * 4 + i;
      batch.push_back(Tuple{ts, {Value{ts}}});
    }
    return batch;
  };
  for (int b = 0; b < 50; ++b) {
    Runtime::Task task;
    task.engine = &engine;
    task.engine_id = 9;
    task.runs.push_back(make_batch(b));
    rt.dispatch(0, std::move(task));
  }
  rt.drain();

  const RuntimeStats mid = rt.stats();
  ASSERT_EQ(mid.shards.size(), 1u);
  EXPECT_EQ(mid.shards[0].tuples, 200u);
  EXPECT_GT(mid.shards[0].stall_ns, 0u) << "tiny queue never blocked?";
  EXPECT_GE(mid.shards[0].max_queue_depth, 1u);
  EXPECT_GT(mid.total_stall_seconds(), 0.0);

  // More work after the first snapshot: a later snapshot only grows.
  for (int b = 50; b < 60; ++b) {
    Runtime::Task task;
    task.engine = &engine;
    task.engine_id = 9;
    task.runs.push_back(make_batch(b));
    rt.dispatch(0, std::move(task));
  }
  rt.drain();
  const RuntimeStats late = rt.stats();
  EXPECT_EQ(late.shards[0].tuples, 240u);
  EXPECT_GE(late.shards[0].stall_ns, mid.shards[0].stall_ns);
  EXPECT_GE(late.shards[0].max_queue_depth, mid.shards[0].max_queue_depth);
  EXPECT_GE(late.shards[0].busy_ns, mid.shards[0].busy_ns);
  rt.stop();
}

TEST(BackpressureStats, PerShardCountersMergeIntoRuntimeTotals) {
  Engine a;
  a.register_stream("S", one_field());
  a.attach("S", [](const Tuple&) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  });
  Engine b;
  b.register_stream("S", one_field());
  b.attach("S", [](const Tuple&) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  });

  Runtime rt{{2, 1}};
  rt.start();
  const auto make_batch = [](int n) {
    TupleBatch batch{"S"};
    for (int i = 0; i < 2; ++i) {
      const int ts = n * 2 + i;
      batch.push_back(Tuple{ts, {Value{ts}}});
    }
    return batch;
  };
  for (int n = 0; n < 40; ++n) {
    Runtime::Task ta;
    ta.engine = &a;
    ta.engine_id = 1;
    ta.runs.push_back(make_batch(n));
    rt.dispatch(0, std::move(ta));
    Runtime::Task tb;
    tb.engine = &b;
    tb.engine_id = 2;
    tb.runs.push_back(make_batch(n));
    rt.dispatch(1, std::move(tb));
  }
  rt.drain();
  const RuntimeStats stats = rt.stats();
  ASSERT_EQ(stats.shards.size(), 2u);
  EXPECT_EQ(stats.total_tuples(), 160u);
  // The aggregate equals the sum of both shards' stall shares.
  const double per_shard = static_cast<double>(stats.shards[0].stall_ns +
                                               stats.shards[1].stall_ns) *
                           1e-9;
  EXPECT_DOUBLE_EQ(stats.total_stall_seconds(), per_shard);
  rt.stop();
}

TEST(RuntimeStatsEngine, BinarySearchFindsEveryIdAndRejectsAbsentOnes) {
  RuntimeStats stats;
  // Sparse, sorted ids — the shape Runtime::stats() produces.
  for (const std::uint64_t id : {2u, 5u, 9u, 40u, 1000u}) {
    EngineStats e;
    e.engine = id;
    e.tuples = id * 10;
    stats.engines.push_back(e);
  }
  for (const auto& e : stats.engines) {
    const EngineStats* row = stats.engine(e.engine);
    ASSERT_NE(row, nullptr) << e.engine;
    EXPECT_EQ(row->tuples, e.engine * 10);
  }
  for (const std::uint64_t id : {0u, 1u, 3u, 8u, 41u, 999u, 1001u}) {
    EXPECT_EQ(stats.engine(id), nullptr) << id;
  }
  const RuntimeStats empty;
  EXPECT_EQ(empty.engine(0), nullptr);
}

}  // namespace
}  // namespace cosmos::runtime
