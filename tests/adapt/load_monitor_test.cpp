// LoadMonitor: cumulative-counter differentiation, EWMA smoothing, shard
// attribution, and the imbalance metric.
#include <gtest/gtest.h>

#include "adapt/load_monitor.h"

namespace cosmos::adapt {
namespace {

runtime::RuntimeStats stats_with(
    std::vector<runtime::EngineStats> engines) {
  runtime::RuntimeStats s;
  s.engines = std::move(engines);
  return s;
}

TEST(LoadMonitor, FirstSampleIsBaselineOnly) {
  LoadMonitor mon{0.5};
  const std::unordered_map<std::uint64_t, std::size_t> pin{{7, 0}};
  mon.sample(stats_with({{7, 1000, 10, 5'000'000'000}}), pin, 0);
  // Whatever ran before the first sample covers an unknown interval: no
  // load rows yet, just the baseline.
  EXPECT_TRUE(mon.loads().empty());
  EXPECT_EQ(mon.samples(), 1u);
}

TEST(LoadMonitor, DifferentiatesAgainstPreviousSample) {
  LoadMonitor mon{1.0};  // alpha 1: loads equal the latest delta
  const std::unordered_map<std::uint64_t, std::size_t> pin{{1, 0}, {2, 1}};
  mon.sample(stats_with({{1, 100, 1, 1'000'000'000},
                         {2, 200, 2, 2'000'000'000}}),
             pin, 0);
  mon.sample(stats_with({{1, 400, 4, 3'000'000'000},
                         {2, 250, 3, 2'500'000'000}}),
             pin, 60'000);
  ASSERT_EQ(mon.loads().size(), 2u);
  const auto& e1 = mon.loads()[0];
  EXPECT_EQ(e1.engine, 1u);
  EXPECT_EQ(e1.shard, 0u);
  EXPECT_DOUBLE_EQ(e1.tuples, 300.0);
  EXPECT_DOUBLE_EQ(e1.cpu_seconds, 2.0);
  EXPECT_DOUBLE_EQ(e1.tuples_per_ms, 300.0 / 60'000.0);
  const auto& e2 = mon.loads()[1];
  EXPECT_DOUBLE_EQ(e2.tuples, 50.0);
  EXPECT_DOUBLE_EQ(e2.cpu_seconds, 0.5);
}

TEST(LoadMonitor, EwmaSmoothsAcrossIntervals) {
  LoadMonitor mon{0.5};
  const std::unordered_map<std::uint64_t, std::size_t> pin{{1, 0}};
  mon.sample(stats_with({{1, 0, 0, 0}}), pin, 0);
  mon.sample(stats_with({{1, 100, 1, 1'000'000'000}}), pin, 1'000);
  // A fresh engine's first interval seeds the EWMA directly.
  EXPECT_DOUBLE_EQ(mon.loads()[0].cpu_seconds, 1.0);
  // Idle interval: EWMA halves rather than dropping to zero.
  mon.sample(stats_with({{1, 100, 1, 1'000'000'000}}), pin, 2'000);
  EXPECT_DOUBLE_EQ(mon.loads()[0].cpu_seconds, 0.5);
  mon.sample(stats_with({{1, 100, 1, 1'000'000'000}}), pin, 3'000);
  EXPECT_DOUBLE_EQ(mon.loads()[0].cpu_seconds, 0.25);
}

TEST(LoadMonitor, TracksRePinning) {
  LoadMonitor mon{1.0};
  std::unordered_map<std::uint64_t, std::size_t> pin{{1, 0}};
  mon.sample(stats_with({{1, 0, 0, 0}}), pin, 0);
  mon.sample(stats_with({{1, 10, 1, 1'000'000'000}}), pin, 1'000);
  EXPECT_EQ(mon.loads()[0].shard, 0u);
  pin[1] = 3;  // migrated
  mon.sample(stats_with({{1, 20, 2, 2'000'000'000}}), pin, 2'000);
  EXPECT_EQ(mon.loads()[0].shard, 3u);
}

TEST(LoadMonitor, ShardLoadsSumPinnedEngines) {
  LoadMonitor mon{1.0};
  const std::unordered_map<std::uint64_t, std::size_t> pin{
      {1, 0}, {2, 0}, {3, 1}};
  mon.sample(stats_with({{1, 0, 0, 0}, {2, 0, 0, 0}, {3, 0, 0, 0}}), pin, 0);
  mon.sample(stats_with({{1, 1, 1, 1'000'000'000},
                         {2, 1, 1, 2'000'000'000},
                         {3, 1, 1, 500'000'000}}),
             pin, 1'000);
  const auto loads = mon.shard_loads(2);
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_DOUBLE_EQ(loads[0], 3.0);
  EXPECT_DOUBLE_EQ(loads[1], 0.5);
}

TEST(LoadMonitor, ImbalanceMetric) {
  EXPECT_DOUBLE_EQ(LoadMonitor::imbalance({}), 0.0);
  EXPECT_DOUBLE_EQ(LoadMonitor::imbalance({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(LoadMonitor::imbalance({1.0, 1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(LoadMonitor::imbalance({4.0, 0.0, 0.0, 0.0}), 4.0);
  EXPECT_DOUBLE_EQ(LoadMonitor::imbalance({3.0, 1.0}), 1.5);
}

TEST(LoadMonitor, IgnoresEnginesWithoutPinning) {
  LoadMonitor mon{1.0};
  const std::unordered_map<std::uint64_t, std::size_t> pin{{1, 0}};
  mon.sample(stats_with({{1, 0, 0, 0}, {99, 0, 0, 0}}), pin, 0);
  mon.sample(stats_with({{1, 5, 1, 1'000'000'000},
                         {99, 5, 1, 1'000'000'000}}),
             pin, 1'000);
  ASSERT_EQ(mon.loads().size(), 1u);
  EXPECT_EQ(mon.loads()[0].engine, 1u);
}

TEST(LoadMonitor, RejectsBadAlpha) {
  EXPECT_THROW(LoadMonitor{0.0}, std::invalid_argument);
  EXPECT_THROW(LoadMonitor{1.5}, std::invalid_argument);
}

}  // namespace
}  // namespace cosmos::adapt
