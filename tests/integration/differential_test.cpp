// Randomized differential harness: the load-bearing invariant of the whole
// execution stack is that the runtime-backed Cosmos::run() delivers
// byte-identical per-query result sequences to the synchronous push() mode
// — at any shard count, any batch size, and with adaptation on or off.
// This harness generates seeded random workloads (Zipf-skewed,
// rate-perturbed station traces via sim::make_skewed_trace, plus random
// query mixes submitted through the CQL parser) and replays each through
// every configuration in the {1,4,8} shards x {1,64,1024} batch x
// {adapt off, adapt on} grid, diffing the full result logs against push().
//
// On failure the seed and configuration are printed; replay one seed with
//   COSMOS_DIFF_SEED=<seed> ./tests_integration_differential_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cosmos/cosmos.h"
#include "cql/parser.h"
#include "net/topology.h"
#include "sim/workload.h"

namespace cosmos::middleware {
namespace {

/// One printable line per delivered tuple, in delivery order — the
/// byte-comparable per-query result sequence.
using ResultLog = std::map<QueryId, std::vector<std::string>>;

struct RandomWorkload {
  std::vector<NodeId> nodes;
  net::LatencyMatrix lat;
  std::vector<runtime::TraceEvent> events;
  std::size_t stations = 0;
  /// (CQL text, host, proxy) triples, submitted in order with sequential
  /// query ids.
  std::vector<std::tuple<std::string, NodeId, NodeId>> queries;
};

std::string window_clause(Rng& rng) {
  switch (rng.next_below(4)) {
    case 0:
      return "[Now]";
    case 1:
      return "[Range " + std::to_string(1 + rng.next_below(15)) + " Minutes]";
    case 2:
      return "[Range " + std::to_string(20 + rng.next_below(40)) +
             " Minutes]";
    default:
      return "[Range 1 Hours]";
  }
}

std::string station(std::size_t idx) {
  return sim::station_stream_name(idx);
}

/// A random single-stream or two-stream windowed query over the station
/// streams; always parses and validates.
std::string random_query_text(Rng& rng, std::size_t stations) {
  const std::size_t a = rng.next_below(stations);
  if (rng.next_below(3) == 0) {
    // Single-stream selection with a constant filter.
    const char* field = rng.next_below(2) == 0 ? "snowHeight" : "temperature";
    const char* op = rng.next_below(2) == 0 ? ">" : "<=";
    const double threshold = rng.next_below(2) == 0 ? 20.0 : -4.5;
    const std::string select =
        rng.next_below(2) == 0 ? "*" : "S1.snowHeight, S1.timestamp";
    return "SELECT " + select + " FROM " + station(a) + " " +
           window_clause(rng) + " S1 WHERE S1." + field + " " + op + " " +
           std::to_string(threshold);
  }
  // Two-stream windowed join with a field-field predicate and sometimes a
  // residual constant conjunct.
  std::size_t b = rng.next_below(stations);
  while (b == a) b = rng.next_below(stations);
  std::string text = "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, "
                     "S2.timestamp FROM " +
                     station(a) + " " + window_clause(rng) + " S1, " +
                     station(b) + " [Now] S2 WHERE S1.snowHeight " +
                     (rng.next_below(2) == 0 ? ">" : ">=") + " S2.snowHeight";
  if (rng.next_below(2) == 0) text += " AND S1.temperature < 2.5";
  return text;
}

RandomWorkload make_workload(std::uint64_t seed) {
  RandomWorkload w;
  Rng rng{seed * 7919 + 13};

  const std::size_t node_count = 8 + rng.next_below(5);  // 8..12 brokers
  const auto topo = net::make_wide_area_mesh(node_count, 3, rng);
  for (std::size_t i = 0; i < node_count; ++i) {
    w.nodes.push_back(NodeId{static_cast<NodeId::value_type>(i)});
  }
  w.lat = net::LatencyMatrix{topo, w.nodes};

  sim::SkewedTraceParams tp;
  tp.stations = 4 + rng.next_below(4);  // 4..7 streams
  tp.total_tuples = 220 + rng.next_below(120);
  tp.duration_ms = 2 * 3'600'000;
  tp.zipf_theta = 0.4 + 0.1 * static_cast<double>(rng.next_below(7));
  tp.perturb_pattern = (seed % 3 == 0) ? "" : (seed % 3 == 1 ? "I" : "ID");
  tp.perturb_stations = 1 + rng.next_below(2);
  w.stations = tp.stations;
  for (const auto& r : sim::make_skewed_trace(tp, rng)) {
    w.events.push_back({station(r.station), r.tuple});
  }

  const std::size_t query_count = 3 + rng.next_below(4);  // 3..6 queries
  for (std::size_t q = 0; q < query_count; ++q) {
    // Hosts and proxies drawn from the non-source nodes (2..n-1).
    const NodeId host{static_cast<NodeId::value_type>(
        2 + rng.next_below(node_count - 2))};
    const NodeId proxy{static_cast<NodeId::value_type>(
        2 + rng.next_below(node_count - 2))};
    w.queries.emplace_back(random_query_text(rng, w.stations), host, proxy);
  }
  return w;
}

std::unique_ptr<Cosmos> build_system(const RandomWorkload& w, ResultLog& log) {
  auto sys = std::make_unique<Cosmos>(w.nodes, w.lat);
  // Station streams spread over the first two nodes (the sources).
  for (std::size_t st = 0; st < w.stations; ++st) {
    sys->register_source(station(st), sim::sensor_schema(),
                         w.nodes[st % 2]);
  }
  std::size_t qid = 0;
  for (const auto& [text, host, proxy] : w.queries) {
    const QueryId id{static_cast<QueryId::value_type>(qid++)};
    sys->submit(cql::parse_query(text, id, proxy), host,
                [&log](QueryId q, const stream::Tuple& t) {
                  std::string line = std::to_string(t.ts);
                  for (const auto& v : t.values) line += "|" + v.to_string();
                  log[q].push_back(std::move(line));
                });
  }
  return sys;
}

TEST(Differential, RunMatchesPushAcrossShardsBatchesAndAdaptation) {
  // COSMOS_DIFF_SEED replays a single failing workload; default sweeps 20.
  std::uint64_t only_seed = 0;
  if (const char* s = std::getenv("COSMOS_DIFF_SEED")) {
    only_seed = std::strtoull(s, nullptr, 10);
  }

  std::size_t total_results = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    if (only_seed != 0 && seed != only_seed) continue;
    const auto w = make_workload(seed);

    ResultLog push_log;
    {
      auto sys = build_system(w, push_log);
      for (const auto& ev : w.events) sys->push(ev.stream, ev.tuple);
    }
    for (const auto& [q, lines] : push_log) total_results += lines.size();

    for (const std::size_t shards : {1, 4, 8}) {
      for (const std::size_t batch : {1, 64, 1024}) {
        for (const bool adapt_on : {false, true}) {
          ResultLog run_log;
          auto sys = build_system(w, run_log);
          Cosmos::RunOptions opts;
          opts.shards = shards;
          opts.batch_size = batch;
          opts.queue_capacity = 3;  // small: exercise backpressure
          opts.tick_ms = 20 * 60'000;
          opts.adapt.enabled = adapt_on;
          // Aggressive knobs so adaptation actually migrates mid-trace.
          opts.adapt.adapt_every_ms = 15 * 60'000;
          opts.adapt.imbalance_threshold = 1.01;
          opts.adapt.ewma_alpha = 1.0;
          opts.adapt.min_gain_seconds = 0.0;
          opts.adapt.max_moves_per_round = 8;
          const auto report = sys->run(w.events, opts);
          EXPECT_EQ(report.tuples, w.events.size());
          ASSERT_EQ(run_log, push_log)
              << "differential mismatch: seed=" << seed
              << " shards=" << shards << " batch=" << batch
              << " adapt=" << (adapt_on ? "on" : "off")
              << "  (replay: COSMOS_DIFF_SEED=" << seed << ")";
        }
      }
    }
  }
  // The sweep must exercise real result flow, not vacuous empty logs.
  EXPECT_GT(total_results, 0u);
}

}  // namespace
}  // namespace cosmos::middleware
