#include "net/topology.h"

#include <gtest/gtest.h>

namespace cosmos::net {
namespace {

TEST(Topology, AddEdgeIsSymmetric) {
  Topology t{3};
  t.add_edge(NodeId{0}, NodeId{1}, 5.0);
  EXPECT_TRUE(t.has_edge(NodeId{0}, NodeId{1}));
  EXPECT_TRUE(t.has_edge(NodeId{1}, NodeId{0}));
  EXPECT_FALSE(t.has_edge(NodeId{0}, NodeId{2}));
  EXPECT_EQ(t.edge_count(), 1u);
}

TEST(Topology, RejectsBadEdges) {
  Topology t{2};
  EXPECT_THROW(t.add_edge(NodeId{0}, NodeId{0}, 1.0), std::invalid_argument);
  EXPECT_THROW(t.add_edge(NodeId{0}, NodeId{5}, 1.0), std::invalid_argument);
  EXPECT_THROW(t.add_edge(NodeId{0}, NodeId{1}, 0.0), std::invalid_argument);
  EXPECT_THROW(t.add_edge(NodeId{0}, NodeId{1}, -3.0), std::invalid_argument);
}

TEST(Topology, DuplicateEdgeIsIgnored) {
  Topology t{2};
  t.add_edge(NodeId{0}, NodeId{1}, 5.0);
  t.add_edge(NodeId{0}, NodeId{1}, 9.0);
  EXPECT_EQ(t.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(t.neighbors(NodeId{0}).front().latency_ms, 5.0);
}

TEST(Topology, ConnectedDetection) {
  Topology t{4};
  t.add_edge(NodeId{0}, NodeId{1}, 1.0);
  t.add_edge(NodeId{2}, NodeId{3}, 1.0);
  EXPECT_FALSE(t.connected());
  t.add_edge(NodeId{1}, NodeId{2}, 1.0);
  EXPECT_TRUE(t.connected());
}

TEST(TransitStub, ProducesRequestedNodeCount) {
  TransitStubParams p;
  EXPECT_EQ(p.total_nodes(), 4096u);  // paper's configuration
  Rng rng{1};
  const Topology t = make_transit_stub(p, rng);
  EXPECT_EQ(t.node_count(), 4096u);
}

TEST(TransitStub, IsConnected) {
  TransitStubParams p;
  p.transit_domains = 3;
  p.transit_nodes_per_domain = 2;
  p.stub_domains_per_transit = 2;
  p.stub_nodes_per_domain = 10;
  Rng rng{2};
  EXPECT_TRUE(make_transit_stub(p, rng).connected());
}

TEST(TransitStub, DeterministicForSeed) {
  TransitStubParams p;
  p.transit_domains = 2;
  p.transit_nodes_per_domain = 2;
  p.stub_domains_per_transit = 2;
  p.stub_nodes_per_domain = 5;
  Rng a{3}, b{3};
  const Topology ta = make_transit_stub(p, a);
  const Topology tb = make_transit_stub(p, b);
  EXPECT_EQ(ta.edge_count(), tb.edge_count());
  for (std::size_t i = 0; i < ta.node_count(); ++i) {
    ASSERT_EQ(ta.neighbors(NodeId{static_cast<NodeId::value_type>(i)}).size(),
              tb.neighbors(NodeId{static_cast<NodeId::value_type>(i)}).size());
  }
}

TEST(TransitStub, StubLinksFasterThanInterTransit) {
  TransitStubParams p;
  Rng rng{4};
  const Topology t = make_transit_stub(p, rng);
  const std::size_t transit_total =
      p.transit_domains * p.transit_nodes_per_domain;
  // Stub-internal links must sit in the configured band.
  for (std::size_t u = transit_total; u < t.node_count(); ++u) {
    for (const auto& e : t.neighbors(NodeId{static_cast<NodeId::value_type>(u)})) {
      if (e.to.value() >= transit_total) {
        EXPECT_LE(e.latency_ms, p.intra_stub_lat_max);
      }
    }
  }
}

TEST(WideAreaMesh, FullyConnectedAndSited) {
  Rng rng{5};
  const Topology t = make_wide_area_mesh(12, 4, rng);
  EXPECT_EQ(t.node_count(), 12u);
  EXPECT_EQ(t.edge_count(), 12u * 11u / 2);
  EXPECT_TRUE(t.connected());
}

TEST(WideAreaMesh, IntraSiteFasterThanInterSite) {
  Rng rng{6};
  const Topology t = make_wide_area_mesh(20, 5, rng);
  // Nodes i and i+5 share a site (round-robin assignment).
  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (const auto& e : t.neighbors(NodeId{0})) {
    if (e.to.value() % 5 == 0) {
      intra += e.latency_ms;
      ++n_intra;
    } else {
      inter += e.latency_ms;
      ++n_inter;
    }
  }
  ASSERT_GT(n_intra, 0);
  ASSERT_GT(n_inter, 0);
  EXPECT_LT(intra / n_intra, inter / n_inter);
}

TEST(WideAreaMesh, RejectsBadParams) {
  Rng rng{7};
  EXPECT_THROW(make_wide_area_mesh(0, 1, rng), std::invalid_argument);
  EXPECT_THROW(make_wide_area_mesh(5, 0, rng), std::invalid_argument);
  EXPECT_THROW(make_wide_area_mesh(5, 6, rng), std::invalid_argument);
}

}  // namespace
}  // namespace cosmos::net
