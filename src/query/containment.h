// Continuous-query containment and result-stream merging.
//
// Section 2.1 of the paper: when multiple queries at one processor have
// overlapping results, COSMOS composes a covering query Q whose result is a
// superset, runs only Q, and "splits" Q's result stream back into the
// original per-user results by attaching re-filtering subscriptions at the
// consumers. The paper's example merges Q3 and Q4 into Q5.
//
// We implement this for conjunctive select-project-join queries over the
// same source streams:
//   * merged window per source  = the wider window,
//   * merged WHERE              = the conjuncts common to both queries,
//   * merged SELECT             = union of the two select lists
//                                 (+ timestamps needed for re-windowing),
//   * per-original re-filter    = dropped conjuncts + a timestamp band
//                                 re-imposing the narrower window + its
//                                 original projection.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/query_spec.h"

namespace cosmos::query {

/// The recipe for recovering one original query from the merged result
/// stream — exactly the content of the paper's p² subscriptions.
struct ResultSplit {
  QueryId original;
  /// Conjuncts of the original WHERE that the merged query dropped.
  std::vector<stream::PredicatePtr> residual_filters;
  /// Per-alias timestamp band re-imposing the original (narrower) windows:
  /// for each entry, require 0 <= t_newest - t_alias <= band_ms.
  struct WindowBand {
    std::string alias;
    std::int64_t band_ms;
  };
  std::vector<WindowBand> window_bands;
  /// The original query's projection (select_all => keep everything).
  bool select_all = false;
  std::vector<SelectItem> select;
};

struct MergedQuery {
  QuerySpec merged;
  ResultSplit split_a;  ///< recovers the first input
  ResultSplit split_b;  ///< recovers the second input
};

/// Structural equality of predicates (same tree shape, fields, ops, consts).
[[nodiscard]] bool equivalent(const stream::PredicatePtr& a,
                              const stream::PredicatePtr& b);

/// True if `sup`'s result is a superset of `sub`'s for every input, under
/// the conjunctive SPJ rules above (sound, not complete).
[[nodiscard]] bool contains(const QuerySpec& sup, const QuerySpec& sub);

/// Attempts to merge two queries into a covering query. Returns nullopt when
/// the queries are not mergeable (different sources/joins, non-conjunctive
/// predicates). `merged_id` names the composite query.
[[nodiscard]] std::optional<MergedQuery> merge_queries(const QuerySpec& a,
                                                       const QuerySpec& b,
                                                       QueryId merged_id);

/// Computes the re-filter recipe recovering `original` from `merged`'s
/// result stream. Precondition: contains(merged, original); throws
/// std::invalid_argument otherwise. Used when more than two queries share
/// one merged deployment.
[[nodiscard]] ResultSplit make_result_split(const QuerySpec& original,
                                            const QuerySpec& merged);

/// Rewrites alias names in a predicate tree (aliases absent from the map
/// pass through). Exposed for subscription generation.
[[nodiscard]] stream::PredicatePtr rename_predicate_aliases(
    const stream::PredicatePtr& p,
    const std::unordered_map<std::string, std::string>& map);

}  // namespace cosmos::query
