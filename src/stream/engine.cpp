#include "stream/engine.h"

#include <stdexcept>

namespace cosmos::stream {

void Engine::register_stream(const std::string& name, Schema schema) {
  if (streams_.contains(name)) {
    throw std::invalid_argument{"Engine: duplicate stream " + name};
  }
  streams_.emplace(name, StreamState{std::move(schema), INT64_MIN, 0, 0, {}});
}

const Schema& Engine::schema(const std::string& name) const {
  const auto it = streams_.find(name);
  if (it == streams_.end()) {
    throw std::out_of_range{"Engine: unknown stream " + name};
  }
  return it->second.schema;
}

Engine::StreamState& Engine::state(const std::string& name) {
  const auto it = streams_.find(name);
  if (it == streams_.end()) {
    throw std::out_of_range{"Engine: unknown stream " + name};
  }
  return it->second;
}

std::size_t Engine::attach(const std::string& name, Tap tap) {
  auto& st = state(name);
  const std::size_t id = st.next_tap_id++;
  st.taps.emplace_back(id, std::move(tap));
  return id;
}

void Engine::detach(const std::string& name, std::size_t tap_id) {
  auto& st = state(name);
  std::erase_if(st.taps, [tap_id](const auto& p) { return p.first == tap_id; });
}

void Engine::publish(const std::string& name, const Tuple& t) {
  auto& st = state(name);
  if (t.ts < st.last_ts) {
    throw std::invalid_argument{"Engine: out-of-order tuple on " + name};
  }
  st.last_ts = t.ts;
  ++st.published;
  // Copy the tap list: a tap may attach/detach while we iterate (a query
  // result published downstream may register new consumers).
  const auto taps = st.taps;
  for (const auto& [id, tap] : taps) tap(t);
}

std::size_t Engine::published_count(const std::string& name) const {
  const auto it = streams_.find(name);
  if (it == streams_.end()) {
    throw std::out_of_range{"Engine: unknown stream " + name};
  }
  return it->second.published;
}

}  // namespace cosmos::stream
