// Runtime values carried by stream tuples.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>

namespace cosmos::stream {

enum class ValueType { kInt, kDouble, kString };

/// A dynamically-typed scalar. Numeric comparisons are cross-type
/// (int vs double compares numerically); strings only compare to strings.
///
/// compare()/operator== are the innermost loop of every filter, join probe
/// and subscription match, so they are inline fast paths: same-type
/// comparisons dispatch on the variant index directly (int-int compares
/// exactly, without the round-trip through double), and no std::string is
/// ever constructed.
class Value {
 public:
  Value() : v_(std::int64_t{0}) {}
  Value(std::int64_t v) : v_(v) {}          // NOLINT(google-explicit-constructor)
  Value(int v) : v_(std::int64_t{v}) {}     // NOLINT(google-explicit-constructor)
  Value(double v) : v_(v) {}                // NOLINT(google-explicit-constructor)
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : v_(std::string{v}) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] ValueType type() const noexcept {
    switch (v_.index()) {
      case 0: return ValueType::kInt;
      case 1: return ValueType::kDouble;
      default: return ValueType::kString;
    }
  }
  [[nodiscard]] bool is_numeric() const noexcept {
    return type() != ValueType::kString;
  }

  /// Numeric view; throws std::logic_error for strings.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Three-way comparison; throws std::logic_error on string-vs-numeric.
  /// int-int compares exactly; int-double and double-double numerically.
  [[nodiscard]] int compare(const Value& other) const {
    const std::size_t ia = v_.index();
    const std::size_t ib = other.v_.index();
    if (ia == 0 && ib == 0) {
      const auto a = *std::get_if<std::int64_t>(&v_);
      const auto b = *std::get_if<std::int64_t>(&other.v_);
      return a < b ? -1 : (a == b ? 0 : 1);
    }
    if (ia != 2 && ib != 2) {
      const double a = ia == 0
                           ? static_cast<double>(*std::get_if<std::int64_t>(&v_))
                           : *std::get_if<double>(&v_);
      const double b =
          ib == 0 ? static_cast<double>(*std::get_if<std::int64_t>(&other.v_))
                  : *std::get_if<double>(&other.v_);
      return a < b ? -1 : (a == b ? 0 : 1);
    }
    if (ia == 2 && ib == 2) {
      const auto& a = *std::get_if<std::string>(&v_);
      const auto& b = *std::get_if<std::string>(&other.v_);
      return a < b ? -1 : (a == b ? 0 : 1);
    }
    throw std::logic_error{"Value: string vs numeric comparison"};
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b) {
    // Same-type fast path: one index check, no three-way detour.
    const std::size_t ia = a.v_.index();
    if (ia == b.v_.index()) {
      switch (ia) {
        case 0:
          return *std::get_if<std::int64_t>(&a.v_) ==
                 *std::get_if<std::int64_t>(&b.v_);
        case 1:
          return *std::get_if<double>(&a.v_) == *std::get_if<double>(&b.v_);
        default:
          return *std::get_if<std::string>(&a.v_) ==
                 *std::get_if<std::string>(&b.v_);
      }
    }
    return a.compare(b) == 0;  // cross-type numeric, or throw on mixed
  }

 private:
  std::variant<std::int64_t, double, std::string> v_;
};

}  // namespace cosmos::stream
