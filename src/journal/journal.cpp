#include "journal/journal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <utility>

#include "journal/crc32.h"
#include "wire/codec.h"

namespace cosmos::journal {

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kIo: return "io";
    case ErrorCode::kBadMagic: return "bad_magic";
    case ErrorCode::kBadVersion: return "bad_version";
    case ErrorCode::kBadHeader: return "bad_header";
    case ErrorCode::kCorruptRecord: return "corrupt_record";
    case ErrorCode::kNoCheckpoint: return "no_checkpoint";
  }
  return "unknown";
}

namespace {

[[noreturn]] void throw_errno(ErrorCode code, const std::string& what) {
  throw Error(code, "journal: " + what + ": " + std::strerror(errno));
}

std::string segment_path(const std::string& dir, std::uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08" PRIu64 ".cjl", seq);
  return dir + "/" + name;
}

/// Parses "seg-NNNNNNNN.cjl" back to its sequence; nullopt for other names.
std::optional<std::uint64_t> segment_seq_of(const char* name) {
  std::uint64_t seq = 0;
  int len = 0;
  if (std::sscanf(name, "seg-%8" SCNu64 ".cjl%n", &seq, &len) != 1) {
    return std::nullopt;
  }
  if (name[len] != '\0') return std::nullopt;
  return seq;
}

std::vector<std::pair<std::uint64_t, std::string>> list_segments(
    const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    throw_errno(ErrorCode::kIo, "cannot open directory '" + dir + "'");
  }
  std::vector<std::pair<std::uint64_t, std::string>> segs;
  while (dirent* e = ::readdir(d)) {
    if (auto seq = segment_seq_of(e->d_name)) {
      segs.emplace_back(*seq, dir + "/" + e->d_name);
    }
  }
  ::closedir(d);
  std::sort(segs.begin(), segs.end());
  return segs;
}

void put_u32_le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void put_u64_le(std::uint8_t* p, std::uint64_t v) {
  put_u32_le(p, static_cast<std::uint32_t>(v));
  put_u32_le(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t get_u64_le(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32_le(p)) |
         (static_cast<std::uint64_t>(get_u32_le(p + 4)) << 32);
}

void put_u16_le(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

std::uint16_t get_u16_le(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

// --- record payload codecs (reusing the wire primitive writer/reader) -----

void encode_meta(wire::Writer& w, const Meta& m) {
  w.u16(m.protocol);
  w.u64(m.batch_size);
  w.i64(m.tick_ms);
  w.u32(m.worker_shards);
  w.u8(m.peer_links ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(m.endpoints.size()));
  for (const auto& e : m.endpoints) w.str(e);
}

Meta decode_meta(wire::Reader& r) {
  Meta m;
  m.protocol = r.u16();
  m.batch_size = r.u64();
  m.tick_ms = r.i64();
  m.worker_shards = r.u32();
  m.peer_links = r.u8() != 0;
  const std::uint32_t n = r.u32();
  m.endpoints.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.endpoints.push_back(r.str());
  r.done();
  return m;
}

void encode_engine_state(wire::Writer& w, const EngineState& s) {
  w.u32(s.engine.value());
  w.u32(s.worker);
  w.u64(s.exec_seq);
  w.u32(static_cast<std::uint32_t>(s.units.size()));
  for (const auto& u : s.units) {
    w.u32(u.unit_id);
    wire::encode_join_state(w, u.joins);
  }
}

EngineState decode_engine_state(wire::Reader& r) {
  EngineState s;
  s.engine = NodeId{r.u32()};
  s.worker = r.u32();
  s.exec_seq = r.u64();
  const std::uint32_t n = r.u32();
  s.units.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    wire::UnitStateMsg u;
    u.unit_id = r.u32();
    u.joins = wire::decode_join_state(r);
    s.units.push_back(std::move(u));
  }
  r.done();
  return s;
}

void encode_commit(wire::Writer& w, const CheckpointCommit& c) {
  w.u64(c.checkpoint_id);
  w.u64(c.events_consumed);
  w.u64(c.chunk_index);
  w.i64(c.watermark);
  w.u8(c.has_watermark ? 1 : 0);
  w.u64(c.engine_states);
}

CheckpointCommit decode_commit(wire::Reader& r) {
  CheckpointCommit c;
  c.checkpoint_id = r.u64();
  c.events_consumed = r.u64();
  c.chunk_index = r.u64();
  c.watermark = r.i64();
  c.has_watermark = r.u8() != 0;
  c.engine_states = r.u64();
  r.done();
  return c;
}

void encode_chunk_routed(wire::Writer& w, const ChunkRouted& m) {
  w.u64(m.chunk_index);
  w.u64(m.events_through);
  w.i64(m.last_ts);
}

ChunkRouted decode_chunk_routed(wire::Reader& r) {
  ChunkRouted m;
  m.chunk_index = r.u64();
  m.events_through = r.u64();
  m.last_ts = r.i64();
  r.done();
  return m;
}

void encode_delivered(wire::Writer& w,
                      const std::vector<DeliveredCount>& counts) {
  w.u32(static_cast<std::uint32_t>(counts.size()));
  for (const auto& c : counts) {
    w.str(c.stream);
    w.u64(c.count);
  }
}

std::vector<DeliveredCount> decode_delivered(wire::Reader& r) {
  const std::uint32_t n = r.u32();
  std::vector<DeliveredCount> counts;
  counts.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    DeliveredCount c;
    c.stream = r.str();
    c.count = r.u64();
    counts.push_back(std::move(c));
  }
  r.done();
  return counts;
}

/// Re-parses a verbatim wire frame stored as a record payload.
wire::Frame decode_frame_bytes(const std::uint8_t* data, std::size_t size) {
  if (size < wire::kFrameHeaderBytes) {
    throw wire::Error("journal frame record shorter than a frame header");
  }
  std::uint8_t header[wire::kFrameHeaderBytes];
  std::memcpy(header, data, wire::kFrameHeaderBytes);
  wire::FrameType type;
  const std::uint32_t len = wire::decode_frame_header(header, type);
  if (size != wire::kFrameHeaderBytes + len) {
    throw wire::Error("journal frame record length mismatch");
  }
  wire::Frame f;
  f.type = type;
  f.payload.assign(data + wire::kFrameHeaderBytes, data + size);
  return f;
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer.

Writer::Writer(std::string dir, Options opts)
    : dir_(std::move(dir)), opts_(opts) {}

std::unique_ptr<Writer> Writer::create(const std::string& dir,
                                       const Meta& meta, const Options& opts) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw_errno(ErrorCode::kIo, "cannot create directory '" + dir + "'");
  }
  std::unique_ptr<Writer> w{new Writer(dir, opts)};
  w->meta_ = meta;
  // A reused directory holds a previous run's segments: wipe them so the
  // fresh run's recovery lineage starts at this run's segment 1.
  for (const auto& [seq, path] : list_segments(dir)) {
    (void)seq;
    ::unlink(path.c_str());
  }
  w->dir_fd_ = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (w->dir_fd_ < 0) {
    throw_errno(ErrorCode::kIo, "cannot open directory '" + dir + "'");
  }
  w->open_segment(1, /*pending=*/false);
  return w;
}

std::unique_ptr<Writer> Writer::continue_at(const std::string& dir,
                                            std::uint64_t segment_seq,
                                            const Meta& meta,
                                            const Options& opts) {
  std::unique_ptr<Writer> w{new Writer(dir, opts)};
  w->meta_ = meta;
  // Surviving segments are the recovery lineage; remember them so commits
  // prune them on the usual retain schedule once this run checkpoints.
  for (const auto& [seq, path] : list_segments(dir)) {
    (void)path;
    w->segments_.insert(seq);
  }
  w->dir_fd_ = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (w->dir_fd_ < 0) {
    throw_errno(ErrorCode::kIo, "cannot open directory '" + dir + "'");
  }
  w->open_segment(segment_seq, /*pending=*/false);
  return w;
}

Writer::~Writer() {
  if (pending_fd_ >= 0) ::close(pending_fd_);
  if (fd_ >= 0) ::close(fd_);
  if (dir_fd_ >= 0) ::close(dir_fd_);
}

void Writer::open_segment(std::uint64_t seq, bool pending) {
  const std::string path = segment_path(dir_, seq);
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw_errno(ErrorCode::kIo, "cannot create segment '" + path + "'");
  }
  std::uint8_t header[kSegmentHeaderBytes];
  put_u32_le(header, kSegmentMagic);
  put_u16_le(header + 4, kFormatVersion);
  put_u16_le(header + 6, 0);  // reserved
  put_u64_le(header + 8, seq);
  if (pending) {
    pending_fd_ = fd;
    pending_path_ = path;
    pending_seq_ = seq;
  } else {
    fd_ = fd;
    path_ = path;
    seq_ = seq;
  }
  write_all(fd, header, sizeof(header), path);
  // The segment preamble: meta first, then (for rolled segments) the cached
  // registrations, so every segment is self-contained for recovery.
  wire::Writer mw;
  encode_meta(mw, meta_);
  const auto meta_bytes = mw.take();
  append(RecordType::kMeta, meta_bytes.data(), meta_bytes.size());
  if (pending) {
    for (const auto& frame : reg_frames_) {
      append(RecordType::kRegistration, frame.data(), frame.size());
    }
  }
}

void Writer::write_all(int fd, const std::uint8_t* data, std::size_t size,
                       const std::string& path) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno(ErrorCode::kIo, "write to '" + path + "' failed");
    }
    off += static_cast<std::size_t>(n);
  }
  bytes_ += size;
}

void Writer::append(RecordType type, const std::uint8_t* payload,
                    std::size_t size) {
  const std::uint32_t body_len = static_cast<std::uint32_t>(1 + size);
  std::vector<std::uint8_t> rec(8 + body_len);
  rec[8] = static_cast<std::uint8_t>(type);
  if (size > 0) std::memcpy(rec.data() + 9, payload, size);
  put_u32_le(rec.data(), body_len);
  put_u32_le(rec.data() + 4, crc32(rec.data() + 8, body_len));
  const bool to_pending = pending_fd_ >= 0;
  const int fd = to_pending ? pending_fd_ : fd_;
  const std::string& path = to_pending ? pending_path_ : path_;
  write_all(fd, rec.data(), rec.size(), path);
  ++records_;
  if (opts_.fsync == Fsync::kEvery) sync_fd(fd, path);
}

void Writer::sync_fd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    throw_errno(ErrorCode::kIo, "fsync of '" + path + "' failed");
  }
  ++fsyncs_;
}

void Writer::sync_dir() {
  if (opts_.fsync == Fsync::kNever) return;
  if (::fsync(dir_fd_) != 0) {
    throw_errno(ErrorCode::kIo, "fsync of directory '" + dir_ + "' failed");
  }
  ++fsyncs_;
}

void Writer::registration(const wire::Frame& frame) {
  auto bytes = wire::encode_frame(frame);
  append(RecordType::kRegistration, bytes.data(), bytes.size());
  reg_frames_.push_back(std::move(bytes));
}

void Writer::execute(const wire::ExecuteMsg& m) {
  const auto bytes = wire::encode_frame(wire::encode_execute(m));
  append(RecordType::kExecute, bytes.data(), bytes.size());
}

void Writer::chunk_routed(const ChunkRouted& m) {
  wire::Writer w;
  encode_chunk_routed(w, m);
  const auto bytes = w.take();
  append(RecordType::kChunkRouted, bytes.data(), bytes.size());
  if (opts_.fsync == Fsync::kChunk) sync_fd(fd_, path_);
}

void Writer::delivered(const std::vector<DeliveredCount>& counts) {
  wire::Writer w;
  encode_delivered(w, counts);
  const auto bytes = w.take();
  append(RecordType::kDelivered, bytes.data(), bytes.size());
}

void Writer::begin_checkpoint() {
  if (!committed_) return;  // initial cut commits into the active segment
  open_segment(seq_ + 1, /*pending=*/true);
}

void Writer::engine_state(const EngineState& m) {
  wire::Writer w;
  encode_engine_state(w, m);
  const auto bytes = w.take();
  append(RecordType::kEngineState, bytes.data(), bytes.size());
}

void Writer::commit_checkpoint(const CheckpointCommit& m) {
  wire::Writer w;
  encode_commit(w, m);
  const auto bytes = w.take();
  append(RecordType::kCheckpointCommit, bytes.data(), bytes.size());
  const bool from_pending = pending_fd_ >= 0;
  if (opts_.fsync != Fsync::kNever) {
    sync_fd(from_pending ? pending_fd_ : fd_,
            from_pending ? pending_path_ : path_);
  }
  if (from_pending) {
    ::close(fd_);
    fd_ = pending_fd_;
    path_ = std::move(pending_path_);
    seq_ = pending_seq_;
    pending_fd_ = -1;
    pending_path_.clear();
    pending_seq_ = 0;
  }
  committed_ = true;
  segments_.insert(seq_);
  prune_segments();
}

void Writer::abort_checkpoint() {
  if (pending_fd_ < 0) return;
  ::close(pending_fd_);
  ::unlink(pending_path_.c_str());
  pending_fd_ = -1;
  pending_path_.clear();
  pending_seq_ = 0;
}

void Writer::prune_segments() {
  while (segments_.size() > opts_.retain_segments) {
    const std::uint64_t oldest = *segments_.begin();
    ::unlink(segment_path(dir_, oldest).c_str());
    segments_.erase(segments_.begin());
  }
  // One directory fsync covers the new segment's dirent and the unlinks.
  sync_dir();
}

// ---------------------------------------------------------------------------
// Recovery.

namespace {

struct ParsedSegment {
  bool has_meta = false;
  Meta meta;
  std::vector<wire::Frame> registrations;
  std::vector<EngineState> pending_states;
  std::vector<EngineState> engines;
  bool has_commit = false;
  CheckpointCommit commit;

  std::vector<wire::ExecuteMsg> executes;      ///< whole-chunk prefix
  std::vector<wire::ExecuteMsg> pending_exec;  ///< since the last marker
  std::map<std::string, std::uint64_t> delivered;
  std::uint64_t resume_events = 0;
  std::uint64_t resume_chunk = 0;
  stream::Timestamp watermark = 0;
  bool has_watermark = false;

  bool torn = false;
  bool corrupt = false;
  std::string corrupt_detail;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw_errno(ErrorCode::kIo, "cannot open segment '" + path + "'");
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno(ErrorCode::kIo, "read of segment '" + path + "' failed");
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return bytes;
}

/// Parses one segment. Header-level failures (too short, bad magic, version
/// skew) throw; record-level failures stop the scan and mark the segment
/// torn or corrupt — whether that matters depends on whether a commit was
/// already seen, which the caller decides.
ParsedSegment parse_segment(const std::string& path, std::uint64_t file_seq) {
  const auto bytes = read_file(path);
  if (bytes.size() < kSegmentHeaderBytes) {
    throw Error(ErrorCode::kBadHeader,
                "journal: segment '" + path + "' shorter than its header (" +
                    std::to_string(bytes.size()) + " bytes)");
  }
  if (get_u32_le(bytes.data()) != kSegmentMagic) {
    throw Error(ErrorCode::kBadMagic,
                "journal: segment '" + path + "' has wrong magic");
  }
  const std::uint16_t version = get_u16_le(bytes.data() + 4);
  if (version != kFormatVersion) {
    throw Error(ErrorCode::kBadVersion,
                "journal: segment '" + path + "' has format version " +
                    std::to_string(version) + ", expected " +
                    std::to_string(kFormatVersion));
  }
  if (get_u64_le(bytes.data() + 8) != file_seq) {
    throw Error(ErrorCode::kBadHeader,
                "journal: segment '" + path +
                    "' header sequence disagrees with its filename");
  }

  ParsedSegment seg;
  std::size_t pos = kSegmentHeaderBytes;
  const auto fail = [&](const std::string& detail) {
    seg.corrupt = true;
    seg.corrupt_detail = "journal: segment '" + path + "' at offset " +
                         std::to_string(pos) + ": " + detail;
  };
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) {
      seg.torn = true;  // partial record frame at EOF: torn final write
      break;
    }
    const std::uint32_t body_len = get_u32_le(&bytes[pos]);
    const std::uint32_t crc = get_u32_le(&bytes[pos + 4]);
    if (body_len == 0 || body_len > kMaxRecordBytes) {
      fail("record length " + std::to_string(body_len) + " out of range");
      break;
    }
    if (bytes.size() - pos - 8 < body_len) {
      seg.torn = true;  // body claims more bytes than the file holds
      break;
    }
    const std::uint8_t* body = &bytes[pos + 8];
    if (crc32(body, body_len) != crc) {
      fail("record CRC mismatch");
      break;
    }
    const auto type = static_cast<RecordType>(body[0]);
    const std::uint8_t* payload = body + 1;
    const std::size_t payload_len = body_len - 1;
    try {
      switch (type) {
        case RecordType::kMeta: {
          if (seg.has_meta) {
            fail("duplicate meta record");
            break;
          }
          wire::Reader r(payload, payload_len);
          seg.meta = decode_meta(r);
          if (seg.meta.protocol != wire::kProtocolVersion) {
            throw Error(ErrorCode::kBadVersion,
                        "journal: segment '" + path +
                            "' was written for wire protocol " +
                            std::to_string(seg.meta.protocol) +
                            ", this build speaks " +
                            std::to_string(wire::kProtocolVersion));
          }
          seg.has_meta = true;
          break;
        }
        case RecordType::kRegistration: {
          if (seg.has_commit) {
            fail("registration record after the commit");
            break;
          }
          seg.registrations.push_back(decode_frame_bytes(payload, payload_len));
          break;
        }
        case RecordType::kEngineState: {
          if (seg.has_commit) {
            fail("engine-state record after the commit");
            break;
          }
          wire::Reader r(payload, payload_len);
          seg.pending_states.push_back(decode_engine_state(r));
          break;
        }
        case RecordType::kCheckpointCommit: {
          if (seg.has_commit) {
            fail("second commit record in one segment");
            break;
          }
          wire::Reader r(payload, payload_len);
          auto commit = decode_commit(r);
          if (commit.engine_states != seg.pending_states.size()) {
            fail("commit claims " + std::to_string(commit.engine_states) +
                 " engine states, segment holds " +
                 std::to_string(seg.pending_states.size()));
            break;
          }
          seg.commit = commit;
          seg.has_commit = true;
          seg.engines = std::move(seg.pending_states);
          seg.pending_states.clear();
          seg.resume_events = commit.events_consumed;
          seg.resume_chunk = commit.chunk_index;
          seg.watermark = commit.watermark;
          seg.has_watermark = commit.has_watermark;
          break;
        }
        case RecordType::kExecute: {
          if (!seg.has_commit) {
            fail("execute record before the commit");
            break;
          }
          auto frame = decode_frame_bytes(payload, payload_len);
          seg.pending_exec.push_back(wire::decode_execute(frame));
          break;
        }
        case RecordType::kChunkRouted: {
          if (!seg.has_commit) {
            fail("chunk-routed record before the commit");
            break;
          }
          wire::Reader r(payload, payload_len);
          const auto m = decode_chunk_routed(r);
          // The marker proves every execute of this chunk was journaled:
          // promote the held-back executes into the replayable prefix.
          for (auto& e : seg.pending_exec) seg.executes.push_back(std::move(e));
          seg.pending_exec.clear();
          seg.resume_events = m.events_through;
          seg.resume_chunk = m.chunk_index + 1;
          seg.watermark = m.last_ts;
          seg.has_watermark = true;
          break;
        }
        case RecordType::kDelivered: {
          if (!seg.has_commit) {
            fail("delivered record before the commit");
            break;
          }
          wire::Reader r(payload, payload_len);
          for (auto& c : decode_delivered(r)) {
            seg.delivered[c.stream] += c.count;
          }
          break;
        }
        default:
          fail("unknown record type " + std::to_string(body[0]));
          break;
      }
    } catch (const wire::Error& e) {
      fail(std::string{"record decode failed: "} + e.what());
    }
    if (seg.corrupt) break;
    if (!seg.has_meta) {
      fail("first record is not meta");
      break;
    }
    pos += 8 + body_len;
  }
  return seg;
}

}  // namespace

RecoveredRun recover(const std::string& dir) {
  auto segs = list_segments(dir);  // throws kIo if the dir is unreadable
  if (segs.empty()) {
    throw Error(ErrorCode::kNoCheckpoint,
                "journal: no segments in '" + dir + "'");
  }
  std::sort(segs.begin(), segs.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::optional<Error> newest_failure;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const auto& [seq, path] = segs[i];
    ParsedSegment seg;
    try {
      seg = parse_segment(path, seq);
    } catch (const Error& e) {
      if (e.code() == ErrorCode::kIo) throw;  // syscall trouble, not content
      if (i == 0) newest_failure = e;
      continue;  // header-level damage: roll back to the previous segment
    }
    if (!seg.has_commit) {
      // Pending segment a crash abandoned mid-checkpoint, or corruption
      // reached the commit: either way the previous segment is the cut.
      if (i == 0) {
        newest_failure =
            seg.corrupt
                ? Error(ErrorCode::kCorruptRecord, seg.corrupt_detail)
                : Error(ErrorCode::kNoCheckpoint,
                        "journal: newest segment '" + path +
                            "' holds no checkpoint commit");
      }
      continue;
    }

    RecoveredRun run;
    run.meta = std::move(seg.meta);
    run.registrations = std::move(seg.registrations);
    run.engines = std::move(seg.engines);
    run.checkpoint = seg.commit;
    run.executes = std::move(seg.executes);
    run.delivered.reserve(seg.delivered.size());
    for (auto& [stream, count] : seg.delivered) {
      run.delivered.push_back(DeliveredCount{stream, count});
    }
    run.resume_events = seg.resume_events;
    run.resume_chunk = seg.resume_chunk;
    run.watermark = seg.watermark;
    run.has_watermark = seg.has_watermark;
    run.torn_tail = seg.torn;
    run.records_dropped =
        seg.pending_exec.size() + ((seg.torn || seg.corrupt) ? 1 : 0);
    run.segments_rolled_back = i;
    run.next_segment = segs.front().first + 1;
    return run;
  }
  if (newest_failure) throw *newest_failure;
  throw Error(ErrorCode::kNoCheckpoint,
              "journal: no segment in '" + dir +
                  "' holds a valid checkpoint commit");
}

}  // namespace cosmos::journal
