// Minimal POSIX stream-socket layer for the federation transport: TCP and
// Unix-domain endpoints behind one address syntax ("tcp:host:port" /
// "unix:/path"), a listener, and blocking full-frame send/recv over an
// RAII fd. All failures surface as wire::Error; SIGPIPE is never raised
// (sends use MSG_NOSIGNAL).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wire/codec.h"

namespace cosmos::wire {

/// A parseable transport address. TCP: "tcp:host:port" (or "host:port");
/// Unix domain: "unix:/path/to.sock".
struct Endpoint {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kUnix;
  std::string host;  ///< TCP only
  std::uint16_t port = 0;  ///< TCP only
  std::string path;  ///< Unix only

  /// Throws wire::Error on unparseable input.
  [[nodiscard]] static Endpoint parse(const std::string& address);
  [[nodiscard]] std::string to_string() const;
};

/// RAII stream socket. Movable, not copyable; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Writes the whole buffer; throws wire::Error on any failure.
  void send_all(const std::uint8_t* data, std::size_t size);
  /// Reads exactly `size` bytes. Returns false on clean EOF at offset 0
  /// (orderly peer close between frames); throws wire::Error on mid-buffer
  /// EOF or any socket error.
  [[nodiscard]] bool recv_all(std::uint8_t* data, std::size_t size);

  /// Shuts down both directions (unblocks a reader in another thread) and
  /// closes the fd. Idempotent.
  void close() noexcept;
  /// Shutdown without closing — wakes blocked readers/writers.
  void shutdown_both() noexcept;

 private:
  int fd_ = -1;
};

/// Sends one whole encoded frame.
void send_frame(Socket& s, const Frame& frame);
/// Receives one whole frame; nullopt on clean EOF at a frame boundary.
[[nodiscard]] std::optional<Frame> recv_frame(Socket& s);

/// Bound + listening server socket for either endpoint kind. For TCP with
/// port 0, `endpoint()` reports the ephemeral port actually bound. For
/// Unix endpoints, any stale socket file is removed before binding and the
/// file is unlinked on destruction.
class Listener {
 public:
  explicit Listener(const Endpoint& at);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] const Endpoint& endpoint() const noexcept { return at_; }
  /// Blocks for the next connection. Throws wire::Error if the listener
  /// was closed underneath (orderly daemon shutdown path).
  [[nodiscard]] Socket accept();
  /// Wakes any thread blocked in accept() (it throws) and unlinks a Unix
  /// socket path. The fd is released in the destructor, not here, so a
  /// concurrent accepter never observes the descriptor changing.
  void close() noexcept;

 private:
  Endpoint at_;
  Socket sock_;
  bool unlink_on_close_ = false;
};

/// Connects to `to`, retrying (connection refused / socket file not yet
/// present) until `timeout_ms` elapses — covers the daemon-startup race.
[[nodiscard]] Socket connect_to(const Endpoint& to, int timeout_ms = 10'000);

}  // namespace cosmos::wire
