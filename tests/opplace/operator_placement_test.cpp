#include "opplace/operator_placement.h"

#include <gtest/gtest.h>

#include "cql/parser.h"
#include "net/topology.h"
#include "sim/sensor_trace.h"

namespace cosmos::opplace {
namespace {

struct Fixture {
  net::Topology topo{5};
  std::vector<NodeId> all{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3},
                          NodeId{4}};
  net::LatencyMatrix lat;
  std::map<std::string, SourceStream> sources;
  std::vector<NodeId> processors{NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}};

  Fixture() {
    topo.add_edge(NodeId{0}, NodeId{1}, 5.0);
    topo.add_edge(NodeId{1}, NodeId{2}, 50.0);
    topo.add_edge(NodeId{2}, NodeId{3}, 5.0);
    topo.add_edge(NodeId{3}, NodeId{4}, 5.0);
    lat = net::LatencyMatrix{topo, all};
    sources.emplace("Station1",
                    SourceStream{NodeId{0}, sim::sensor_schema()});
    sources.emplace("Station2",
                    SourceStream{NodeId{0}, sim::sensor_schema()});
  }
};

query::QuerySpec join_query(QueryId id, NodeId proxy, int threshold) {
  return cql::parse_query(
      "SELECT S1.snowHeight, S2.snowHeight FROM Station1 [Range 30 Minutes] "
      "S1, Station2 [Now] S2 WHERE S1.snowHeight > S2.snowHeight AND "
      "S1.snowHeight >= " +
          std::to_string(threshold),
      id, proxy);
}

TEST(OperatorPlacement, SharesIdenticalSelections) {
  Fixture f;
  OperatorPlacementSystem sys{f.sources, f.processors, f.lat};
  // Two queries with identical selections => shared signatures.
  std::vector<query::QuerySpec> qs{join_query(QueryId{0}, NodeId{3}, 10),
                                   join_query(QueryId{1}, NodeId{4}, 10)};
  Rng rng{1};
  sys.deploy(qs, rng);
  // Station1 selection (>=10) shared; Station2 has no selection (TRUE),
  // also shared: exactly 2 signatures, not 4.
  EXPECT_EQ(sys.stats().selection_signatures, 2u);
  EXPECT_EQ(sys.stats().evaluation_ops, 2u);
}

TEST(OperatorPlacement, DistinctSelectionsNotShared) {
  Fixture f;
  OperatorPlacementSystem sys{f.sources, f.processors, f.lat};
  std::vector<query::QuerySpec> qs{join_query(QueryId{0}, NodeId{3}, 10),
                                   join_query(QueryId{1}, NodeId{4}, 20)};
  Rng rng{2};
  sys.deploy(qs, rng);
  EXPECT_EQ(sys.stats().selection_signatures, 3u);
}

TEST(OperatorPlacement, ProducesResultsAndTraffic) {
  Fixture f;
  OperatorPlacementSystem sys{f.sources, f.processors, f.lat};
  std::vector<query::QuerySpec> qs{join_query(QueryId{0}, NodeId{3}, 5)};
  Rng rng{3};
  sys.deploy(qs, rng);
  sim::SensorTraceParams tp;
  tp.stations = 2;
  tp.readings_per_station = 100;
  Rng trng{8};
  for (const auto& r : sim::make_sensor_trace(tp, trng)) {
    sys.push(sim::station_stream_name(r.station), r.tuple);
  }
  EXPECT_GT(sys.results_delivered(), 0u);
  EXPECT_GT(sys.traffic().bytes, 0.0);
  EXPECT_GT(sys.traffic().weighted_cost, 0.0);
  EXPECT_TRUE(f.lat.contains(sys.host_of(QueryId{0})));
}

TEST(OperatorPlacement, OptimizerTimeReported) {
  Fixture f;
  OperatorPlacementSystem sys{f.sources, f.processors, f.lat};
  std::vector<query::QuerySpec> qs;
  for (int i = 0; i < 50; ++i) {
    qs.push_back(join_query(QueryId{static_cast<QueryId::value_type>(i)},
                            f.processors[i % 4], 5 + i % 20));
  }
  Rng rng{4};
  sys.deploy(qs, rng);
  EXPECT_GT(sys.stats().optimize_seconds, 0.0);
  EXPECT_EQ(sys.stats().evaluation_ops, 50u);
}

TEST(OperatorPlacement, UnknownStreamThrows) {
  Fixture f;
  OperatorPlacementSystem sys{f.sources, f.processors, f.lat};
  stream::Tuple t{0, {stream::Value{1.0}}};
  EXPECT_THROW(sys.push("nope", t), std::invalid_argument);
}

}  // namespace
}  // namespace cosmos::opplace
