#include "wire/channel.h"

#include <algorithm>

#include "obs/trace.h"
#include "wire/messages.h"

namespace cosmos::wire {
namespace {

[[nodiscard]] std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

FrameChannel::FrameChannel(Socket socket, Options options)
    : options_(options),
      send_delay_ms_(options.send_delay_ms),
      heartbeat_every_ms_(options.heartbeat_every_ms),
      liveness_deadline_ms_(options.liveness_deadline_ms),
      socket_(std::move(socket)),
      send_queue_(options.send_queue_capacity),
      fault_(std::move(options.fault)) {
  if (!socket_.valid()) {
    throw Error{"wire: FrameChannel needs a connected socket"};
  }
  const std::int64_t now = now_ns();
  last_send_ns_.store(now, std::memory_order_relaxed);
  last_recv_ns_.store(now, std::memory_order_relaxed);
  sender_ = std::thread([this] { sender_loop(); });
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

FrameChannel::~FrameChannel() { close(); }

void FrameChannel::set_fault(fault::LinkFaultPtr fault) {
  std::lock_guard lock{fault_mu_};
  fault_ = std::move(fault);
}

fault::LinkFaultPtr FrameChannel::fault() const {
  std::lock_guard lock{fault_mu_};
  return fault_;
}

void FrameChannel::record_send_error(const std::string& what) {
  std::lock_guard lock{error_mu_};
  if (send_error_.empty()) send_error_ = what;
}

void FrameChannel::drain_dropped(std::optional<Outgoing>& held) {
  if (held.has_value()) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    held.reset();
  }
  while (send_queue_.try_pop().has_value()) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FrameChannel::write_encoded(FrameType type,
                                 const std::vector<std::uint8_t>& buf) {
  {
    // to_string returns a static literal, as the tracer requires.
    const obs::Span span{to_string(type), "wire_send", buf.size()};
    socket_.send_all(buf.data(), buf.size());
  }
  last_send_ns_.store(now_ns(), std::memory_order_relaxed);
  bytes_sent_.fetch_add(buf.size(), std::memory_order_relaxed);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
}

void FrameChannel::park_until_closed() {
  // Injected hang: stop moving frames but keep the socket open. The
  // watchdog thread still enforces our own silence deadline, so a hung
  // link becomes a detected failure on both sides, never a wedge.
  while (!closed_.load(std::memory_order_relaxed) &&
         !liveness_expired_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void FrameChannel::watchdog_loop() {
  std::unique_lock lock{watchdog_mu_};
  while (!closed_.load(std::memory_order_relaxed) &&
         !liveness_expired_.load(std::memory_order_relaxed)) {
    const std::int64_t deadline = liveness_deadline_ms_.load();
    if (deadline > 0) {
      const std::int64_t last =
          last_recv_ns_.load(std::memory_order_relaxed);
      const std::int64_t now = now_ns();
      if (now - last > deadline * 1'000'000) {
        liveness_expired_.store(true, std::memory_order_relaxed);
        record_send_error(
            "wire: liveness deadline (" + std::to_string(deadline) +
            " ms) exceeded: nothing received from peer for " +
            std::to_string((now - last) / 1'000'000) + " ms");
        // Close the queue so blocked senders throw, and shut the socket
        // down so both the wedged sender and the read side wake — the
        // silence surfaces as a thrown Error and the EOF-driven failure
        // machinery takes over from there.
        send_queue_.close();
        socket_.shutdown_both();
        return;
      }
    }
    const std::int64_t tick =
        deadline > 0 ? std::clamp<std::int64_t>(deadline / 8, 5, 50) : 50;
    watchdog_cv_.wait_for(lock, std::chrono::milliseconds(tick), [&] {
      return closed_.load(std::memory_order_relaxed) ||
             liveness_expired_.load(std::memory_order_relaxed);
    });
  }
}

bool FrameChannel::transmit(Outgoing item, std::optional<Outgoing>& held) {
  fault::SendAction action;
  if (const auto f = fault()) action = f->on_send();
  if (action.hang) {
    park_until_closed();
    return false;
  }
  if (action.drop) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (item.delay_ms > 0 || action.extra_delay_ms > 0) {
    // Departure at enqueue + delay: frames already "in flight" while this
    // one waits, so the emulated latency pipelines instead of accumulating
    // per frame.
    std::this_thread::sleep_until(
        item.enqueued +
        std::chrono::milliseconds(item.delay_ms + action.extra_delay_ms));
  }
  if (action.pace_ms > 0) {
    const auto release =
        std::chrono::steady_clock::time_point{std::chrono::nanoseconds{
            last_send_ns_.load(std::memory_order_relaxed)}} +
        std::chrono::milliseconds(action.pace_ms);
    std::this_thread::sleep_until(release);
  }
  if (action.reorder_hold) {
    held = std::move(item);
    return true;
  }
  auto buf = encode_frame(item.frame);
  if (action.corrupt) {
    fault::corrupt_frame_bytes(buf, action.corrupt_seed, action.frame_index);
  }
  write_encoded(item.frame.type, buf);
  if (action.duplicate) write_encoded(item.frame.type, buf);
  if (held.has_value()) {
    const auto held_buf = encode_frame(held->frame);
    write_encoded(held->frame.type, held_buf);
    held.reset();
  }
  return true;
}

void FrameChannel::sender_loop() {
  struct DoneSignal {
    FrameChannel* ch;
    ~DoneSignal() {
      std::lock_guard lock{ch->sender_done_mu_};
      ch->sender_done_ = true;
      ch->sender_done_cv_.notify_all();
    }
  } done_signal{this};
  std::optional<Outgoing> held;
  while (true) {
    // Tick fast enough to originate heartbeats on time when idle.
    std::int64_t tick_ms = 100;
    if (const auto hb = heartbeat_every_ms_.load(); hb > 0) {
      tick_ms = std::min(tick_ms, std::max<std::int64_t>(5, hb / 4));
    }
    Outgoing item;
    const auto got =
        send_queue_.pop_for(item, std::chrono::milliseconds(tick_ms));
    if (got == decltype(send_queue_)::WaitResult::kClosed) {
      drain_dropped(held);
      return;
    }
    try {
      if (got == decltype(send_queue_)::WaitResult::kTimeout) {
        const std::int64_t hb = heartbeat_every_ms_.load();
        if (hb > 0 && now_ns() - last_send_ns_.load(
                                     std::memory_order_relaxed) >=
                          hb * 1'000'000) {
          // Originate a keepalive. It runs through the same fault schedule
          // as data (a partitioned link must swallow heartbeats too — that
          // is exactly what makes the partition detectable).
          Outgoing beat{encode_heartbeat({}),
                        std::chrono::steady_clock::now(),
                        send_delay_ms_.load(std::memory_order_relaxed)};
          if (!transmit(std::move(beat), held)) {
            drain_dropped(held);
            return;
          }
        }
        continue;
      }
      if (!transmit(std::move(item), held)) {
        drain_dropped(held);
        return;
      }
    } catch (const std::exception& e) {
      record_send_error(e.what());
      send_queue_.close();
      drain_dropped(held);
      return;
    }
  }
}

void FrameChannel::send(Frame frame) {
  Outgoing out{std::move(frame), std::chrono::steady_clock::now(),
               send_delay_ms_.load(std::memory_order_relaxed)};
  if (!send_queue_.push(std::move(out))) {
    const std::string err = send_error();
    throw Error{err.empty() ? "wire: send on closed channel"
                            : "wire: send failed: " + err};
  }
}

void FrameChannel::note_received(std::size_t payload_bytes) {
  last_recv_ns_.store(now_ns(), std::memory_order_relaxed);
  bytes_received_.fetch_add(kFrameHeaderBytes + payload_bytes,
                            std::memory_order_relaxed);
  frames_received_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<Frame> FrameChannel::recv() {
  while (true) {
    std::optional<Frame> frame;
    try {
      frame = recv_frame(socket_);
    } catch (const std::exception&) {
      if (liveness_expired_.load(std::memory_order_relaxed)) {
        throw Error{send_error()};
      }
      throw;
    }
    if (!frame) {
      // A local watchdog shutdown surfaces to recv_frame as a clean EOF;
      // report the deadline, not a lying "peer closed".
      if (liveness_expired_.load(std::memory_order_relaxed)) {
        throw Error{send_error()};
      }
      return std::nullopt;
    }
    if (const auto f = fault()) {
      const auto action = f->on_recv();
      if (action.hang) {
        // Stop reading: to the peer this side looks wedged. The watchdog
        // (sender thread) still enforces our own deadline.
        while (!closed_.load(std::memory_order_relaxed) &&
               !liveness_expired_.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        if (liveness_expired_.load(std::memory_order_relaxed)) {
          throw Error{send_error()};
        }
        return std::nullopt;
      }
      if (action.drop) continue;  // inbound partition: it never arrived
    }
    note_received(frame->payload.size());
    obs::Tracer::instance().instant(to_string(frame->type), "wire_recv",
                                    frame->payload.size());
    return frame;
  }
}

void FrameChannel::start_reader(FrameHandler on_frame, CloseHandler on_close) {
  reader_ = std::thread([this, on_frame = std::move(on_frame),
                         on_close = std::move(on_close)] {
    std::string error;
    try {
      while (auto frame = recv()) on_frame(std::move(*frame));
    } catch (const std::exception& e) {
      error = e.what();
    }
    if (on_close) on_close(error);
  });
}

void FrameChannel::close() {
  if (closed_.exchange(true)) return;
  // Let queued frames flush: close() makes pop() drain-then-stop. The
  // drain is bounded — a sender wedged in send_all() against a dead or
  // stalled peer would otherwise block close() forever; past the deadline
  // the socket shutdown below errors the blocked send and the sender exits
  // on its error path (remaining frames are dropped and counted, which is
  // the best a dead peer allows).
  send_queue_.close();
  if (options_.close_drain_ms > 0) {
    std::unique_lock lock{sender_done_mu_};
    sender_done_cv_.wait_for(lock,
                             std::chrono::milliseconds(options_.close_drain_ms),
                             [&] { return sender_done_; });
    if (!sender_done_) {
      record_send_error("close drain deadline exceeded; tail frames dropped");
    }
  } else if (sender_.joinable()) {
    sender_.join();  // unbounded drain: wait for the queue to empty
  }
  // Unblock a wedged sender and the recv()/reader thread, then reclaim
  // both. On the drained path the queue is already empty, so the shutdown
  // races no pending write.
  socket_.shutdown_both();
  watchdog_cv_.notify_all();
  if (sender_.joinable()) sender_.join();
  if (watchdog_.joinable()) watchdog_.join();
  if (reader_.joinable()) reader_.join();
  socket_.close();
}

std::string FrameChannel::send_error() const {
  std::lock_guard lock{error_mu_};
  return send_error_;
}

}  // namespace cosmos::wire
