// Wire format of the distributed federation: versioned, length-prefixed
// frames carrying the registration, data and control payloads the driver
// and node daemons exchange (tools/cosmos_noded).
//
// Layout rules (docs/federation.md documents the full format):
//  - all integers are little-endian fixed width; doubles travel as their
//    IEEE-754 bit pattern in a u64;
//  - strings are u32 length + raw bytes (no terminator);
//  - every frame is a 12-byte header (u32 magic "COSM", u16 version,
//    u16 type, u32 payload length) followed by the payload bytes.
// Decoding is strict: bad magic, unsupported version, truncated payloads,
// trailing bytes, unknown enum tags and oversized lengths all throw
// wire::Error — a corrupt or mismatched peer can never be half-read.
//
// Everything serialized here is *schema-relative derived state by design*:
// a remote node rebuilds compiled predicates, subscription indexes and
// query plans from (filter, schema) and (spec, result stream) pairs rather
// than receiving compiled artifacts, so both sides always execute exactly
// what they would have compiled locally.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "pubsub/broker_partition.h"
#include "pubsub/subscription.h"
#include "query/query_spec.h"
#include "runtime/tuple_batch.h"
#include "stream/operators.h"
#include "stream/predicate.h"
#include "stream/schema.h"

namespace cosmos::wire {

/// Any wire-level failure: codec violations, socket errors, peer faults.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr std::uint32_t kMagic = 0x434F534Du;  // "COSM"
/// v2: peer-to-peer execute shipping (kPeerTable/kRouteDecision/kPeerHello),
/// per-engine execute sequence numbers, flush/watermark ordering floors and
/// checkpointing migrate-out — the header check (and the explicit echo in
/// kHello) refuses mixed-version fleets at the first frame.
/// v3: liveness — kHeartbeat keepalives with per-peer deadlines (kHello
/// carries the knobs), kPeerHelloAck completing the peer-link handshake,
/// kPeerDown reporting a wedged peer link to the driver, and kSeqGap
/// requesting replay of executes lost on a live-but-lossy link.
inline constexpr std::uint16_t kProtocolVersion = 3;
/// Upper bound on one frame's payload; decode rejects larger claims so a
/// corrupt length prefix cannot trigger a giant allocation.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;

enum class FrameType : std::uint16_t {
  kHello = 1,          ///< driver -> node: version + link emulation knobs
  kHelloAck = 2,       ///< node -> driver: version + daemon info string
  kTopology = 3,       ///< participants + dense latency matrix + options
  kRegisterStream = 4, ///< advertise: stream, publisher, schema
  kSubscribe = 5,      ///< full Subscription (p1 registration)
  kDeployUnit = 6,     ///< unit id, host, result stream, QuerySpec
  kMatchRequest = 7,   ///< job seq + TupleBatch to match
  kMatchResponse = 8,  ///< job seq + per-subscription matched row sets
  kExecute = 9,        ///< engine node + pre-routed TupleBatch
  kResult = 10,        ///< batch of (result stream, tuple) events
  kWatermark = 11,     ///< stream-time watermark: prune idle join state
  kFlush = 12,         ///< seq: drain runtime, ship results, then ack
  kFlushAck = 13,      ///< seq echo
  kMigrateOut = 14,    ///< engine node: serialize + drop its units
  kStateHandoff = 15,  ///< engine node + serialized unit states
  kMigrateIn = 16,     ///< engine node + unit deployments + state blob
  kMigrateAck = 17,    ///< engine node echo
  kTrafficRequest = 18,///< ask for the node's merged TrafficStats
  kTrafficReport = 19, ///< serialized TrafficStats
  kError = 20,         ///< node-side failure description (session is dead)
  kBye = 21,           ///< orderly end of session
  kStatsSample = 22,   ///< node -> driver: metrics snapshot + trace spans
  kPeerTable = 23,     ///< driver -> node: worker-index -> endpoint table
  kRouteDecision = 24, ///< driver -> owner: per-target slices of a match job
  kPeerHello = 25,     ///< worker -> worker: first frame of a peer link
  kHeartbeat = 26,     ///< either direction: liveness keepalive / echo probe
  kPeerHelloAck = 27,  ///< worker -> worker: peer link is live end to end
  kPeerDown = 28,      ///< worker -> driver: a peer execute link is wedged
  kSeqGap = 29,        ///< worker -> driver: unmet seq floors past deadline
};

[[nodiscard]] const char* to_string(FrameType type) noexcept;

struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;
};

// ---------------------------------------------------------------------------
// Primitive writer/reader over a byte buffer.

class Writer {
 public:
  Writer() = default;
  explicit Writer(std::vector<std::uint8_t>&& buf) : buf_(std::move(buf)) {}

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(const std::string& s);

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked sequential reader; every accessor throws wire::Error on
/// underrun. Call done() after the last field to reject trailing garbage.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  /// Throws wire::Error if any bytes remain unconsumed.
  void done() const;

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Frame envelope.

/// Serializes header + payload into one contiguous buffer ready to write.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Parses and validates the 12-byte header; returns the payload length.
/// Throws wire::Error on bad magic, version mismatch or oversize payload.
[[nodiscard]] std::uint32_t decode_frame_header(
    const std::uint8_t (&header)[12], FrameType& type);

inline constexpr std::size_t kFrameHeaderBytes = 12;

// ---------------------------------------------------------------------------
// Domain payload codecs. Each encode_x appends to a Writer; each decode_x
// consumes from a Reader (throwing wire::Error on malformed input).

void encode_value(Writer& w, const stream::Value& v);
[[nodiscard]] stream::Value decode_value(Reader& r);

void encode_tuple(Writer& w, const stream::Tuple& t);
[[nodiscard]] stream::Tuple decode_tuple(Reader& r);

void encode_schema(Writer& w, const stream::Schema& s);
[[nodiscard]] stream::Schema decode_schema(Reader& r);

void encode_window(Writer& w, const stream::WindowSpec& ws);
[[nodiscard]] stream::WindowSpec decode_window(Reader& r);

void encode_field_ref(Writer& w, const stream::FieldRef& f);
[[nodiscard]] stream::FieldRef decode_field_ref(Reader& r);

void encode_predicate(Writer& w, const stream::PredicatePtr& p);
/// Depth-limited (64 levels) so hostile input cannot blow the stack.
[[nodiscard]] stream::PredicatePtr decode_predicate(Reader& r);

void encode_query_spec(Writer& w, const query::QuerySpec& spec);
[[nodiscard]] query::QuerySpec decode_query_spec(Reader& r);

void encode_subscription(Writer& w, const pubsub::Subscription& sub);
[[nodiscard]] pubsub::Subscription decode_subscription(Reader& r);

/// Full column payload: stream name, row count, width, the contiguous ts
/// column (ts_data()) and the row-major value arena (values_data()).
void encode_batch(Writer& w, const runtime::TupleBatch& batch);
[[nodiscard]] runtime::TupleBatch decode_batch(Reader& r);

void encode_traffic(Writer& w, const pubsub::TrafficStats& t);
[[nodiscard]] pubsub::TrafficStats decode_traffic(Reader& r);

/// One plan's window-join state (CompiledQuery::export_join_state order).
void encode_join_state(Writer& w,
                       const std::vector<stream::WindowJoinOp::State>& joins);
[[nodiscard]] std::vector<stream::WindowJoinOp::State> decode_join_state(
    Reader& r);

/// Serialized size in bytes of a plan's live join state — the measured
/// migration payload (what adapt reports as state_bytes_migrated, and what
/// a federated handoff actually ships).
[[nodiscard]] std::size_t serialized_state_bytes(
    const std::vector<stream::WindowJoinOp::State>& joins);

}  // namespace cosmos::wire
