#include "query/query_spec.h"

#include <gtest/gtest.h>

namespace cosmos::query {
namespace {

using stream::Predicate;
using stream::WindowSpec;

QuerySpec valid_spec() {
  QuerySpec q;
  q.sources = {{"S", "S1", WindowSpec::now()}};
  q.select_all = true;
  return q;
}

TEST(QuerySpec, ValidPasses) { EXPECT_NO_THROW(validate(valid_spec())); }

TEST(QuerySpec, RejectsNoSources) {
  auto q = valid_spec();
  q.sources.clear();
  EXPECT_THROW(validate(q), std::invalid_argument);
}

TEST(QuerySpec, RejectsDuplicateAliases) {
  auto q = valid_spec();
  q.sources.push_back({"T", "S1", WindowSpec::now()});
  EXPECT_THROW(validate(q), std::invalid_argument);
}

TEST(QuerySpec, RejectsEmptySelect) {
  auto q = valid_spec();
  q.select_all = false;
  EXPECT_THROW(validate(q), std::invalid_argument);
}

TEST(QuerySpec, RejectsUnknownSelectAlias) {
  auto q = valid_spec();
  q.select_all = false;
  q.select = {{"ZZ", "x"}};
  EXPECT_THROW(validate(q), std::invalid_argument);
}

TEST(QuerySpec, RejectsNonPositiveRange) {
  auto q = valid_spec();
  q.sources[0].window = stream::WindowSpec{stream::WindowSpec::Kind::kRange, 0};
  EXPECT_THROW(validate(q), std::invalid_argument);
}

TEST(QuerySpec, SourceByAlias) {
  auto q = valid_spec();
  EXPECT_NE(q.source_by_alias("S1"), nullptr);
  EXPECT_EQ(q.source_by_alias("S2"), nullptr);
}

TEST(QuerySpec, ToCqlRendersAllClauses) {
  QuerySpec q;
  q.sources = {{"Station1", "S1", WindowSpec::range_millis(3'600'000)},
               {"Station2", "S2", WindowSpec::now()}};
  q.select = {{"S2", ""}, {"S1", "snowHeight"}};
  q.where = Predicate::cmp({"S1", "snowHeight"}, stream::CmpOp::kGt,
                           stream::FieldRef{"S2", "snowHeight"});
  const auto text = q.to_cql();
  EXPECT_NE(text.find("SELECT S2.*, S1.snowHeight"), std::string::npos);
  EXPECT_NE(text.find("Station1 [Range 1 Hour] S1"), std::string::npos);
  EXPECT_NE(text.find("WHERE S1.snowHeight > S2.snowHeight"),
            std::string::npos);
}

}  // namespace
}  // namespace cosmos::query
