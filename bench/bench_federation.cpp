// Federation overhead: the multi-process federated mode (driver + N
// cosmos_noded workers over Unix-domain sockets) vs. the in-process
// sharded run() on the same sensor-station join workload. The federated
// path pays frame encode/decode and socket hops for every chunk, so the
// interesting numbers are end-to-end tuples/s, the federated/in-process
// ratio, and wire bytes per tuple — with the usual identity gate: every
// configuration must produce identical per-query result counts.
//
// --smoke runs a scaled-down trace (the CI gate). Absolute tuples/s are
// hardware-dependent and gate against the previous run's artifact only
// (check_bench.py --fallback); on first introduction the gate records.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cosmos/cosmos.h"
#include "node/spawn.h"
#include "sim/sensor_trace.h"

using namespace cosmos;
using namespace cosmos::bench;

namespace {

/// Windowed two-station join (the runtime-throughput bench's query shape,
/// trimmed): nothing pushes below the join, so engine work is real.
query::QuerySpec make_query(QueryId id, NodeId proxy, std::size_t stations,
                            Rng& rng) {
  const std::size_t a = rng.next_below(stations);
  std::size_t b = rng.next_below(stations);
  while (b == a) b = rng.next_below(stations);
  query::QuerySpec spec;
  spec.id = id;
  spec.proxy = proxy;
  spec.sources = {
      {sim::station_stream_name(a), "S1",
       stream::WindowSpec::range_millis(
           static_cast<std::int64_t>(120 + rng.next_below(120)) * 60'000)},
      {sim::station_stream_name(b), "S2",
       stream::WindowSpec::range_millis(120'000)}};
  spec.select = {{"S1", "snowHeight"}, {"S2", "timestamp"}};
  spec.where = stream::Predicate::conj(
      {stream::Predicate::time_band({"S2", "timestamp"}, {"S1", "timestamp"},
                                    45'000),
       stream::Predicate::cmp(stream::FieldRef{"S1", "snowHeight"},
                              stream::CmpOp::kGt,
                              stream::FieldRef{"S2", "snowHeight"})});
  return spec;
}

struct Fleet {
  std::vector<node::NodeProcess> procs;
  std::vector<std::string> endpoints;
};

Fleet spawn_fleet(std::size_t n) {
  static int counter = 0;
  Fleet fleet;
  const std::string noded = node::default_noded_path();
  for (std::size_t i = 0; i < n; ++i) {
    const std::string endpoint = "unix:/tmp/cosmos_bench_fed_" +
                                 std::to_string(::getpid()) + "_" +
                                 std::to_string(counter++) + ".sock";
    fleet.procs.push_back(node::spawn_noded(noded, endpoint));
    fleet.endpoints.push_back(endpoint);
  }
  return fleet;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double scale = env_scale(smoke ? 0.1 : 1.0);
  const std::uint64_t seed = env_seed(42);
  const std::size_t kNodes = 20;
  const std::size_t kStations = 12;
  const std::size_t readings =
      std::max<std::size_t>(240, static_cast<std::size_t>(1440 * scale));
  const std::size_t nq =
      std::max<std::size_t>(40, static_cast<std::size_t>(300 * scale));

  Rng rng{seed};
  const auto topo = net::make_wide_area_mesh(kNodes, 6, rng);
  std::vector<NodeId> all;
  for (std::size_t i = 0; i < kNodes; ++i) {
    all.push_back(NodeId{static_cast<NodeId::value_type>(i)});
  }
  const net::LatencyMatrix lat{topo, all};

  sim::SensorTraceParams tp;
  tp.stations = kStations;
  tp.readings_per_station = readings;
  Rng trng{seed + 1};
  const auto trace = sim::make_sensor_trace(tp, trng);
  std::vector<runtime::TraceEvent> events;
  events.reserve(trace.size());
  for (const auto& r : trace) {
    events.push_back({sim::station_stream_name(r.station), r.tuple});
  }

  Rng qrng{seed + 2};
  std::vector<query::QuerySpec> specs;
  for (std::size_t i = 0; i < nq; ++i) {
    specs.push_back(make_query(
        QueryId{static_cast<QueryId::value_type>(i)},
        all[2 + qrng.next_below(kNodes - 2)], kStations, qrng));
  }

  const auto build = [&](std::map<QueryId, std::size_t>& per_query) {
    auto sys = std::make_unique<middleware::Cosmos>(all, lat);
    for (std::size_t st = 0; st < kStations; ++st) {
      sys->register_source(sim::station_stream_name(st), sim::sensor_schema(),
                           all[st % 2]);
    }
    Rng prng{seed + 3};
    for (const auto& spec : specs) {
      sys->submit(spec, all[2 + prng.next_below(kNodes - 2)],
                  [&per_query](QueryId q, const stream::Tuple&) {
                    ++per_query[q];
                  });
    }
    return sys;
  };

  std::printf("# federation bench (smoke=%d scale=%.2f seed=%llu "
              "stations=%zu queries=%zu tuples=%zu)\n",
              smoke ? 1 : 0, scale, static_cast<unsigned long long>(seed),
              kStations, nq, events.size());
  std::printf("%-12s %9s %12s %10s %14s\n", "config", "wall-s", "tup/s",
              "results", "wire-B/tuple");

  struct Row {
    std::string name;
    double wall_s = 0.0;
    std::map<QueryId, std::size_t> per_query;
    std::size_t results = 0;
    double wire_bytes_per_tuple = 0.0;
    double e2e_p50_us = 0.0;  ///< ingest->delivery latency (run/fed modes)
    double e2e_p99_us = 0.0;
  };
  std::vector<Row> rows;

  const auto finish = [&](Row row) {
    for (const auto& [q, n] : row.per_query) row.results += n;
    std::printf("%-12s %9.3f %12.0f %10zu %14.1f\n", row.name.c_str(),
                row.wall_s, static_cast<double>(events.size()) / row.wall_s,
                row.results, row.wire_bytes_per_tuple);
    std::fflush(stdout);
    rows.push_back(std::move(row));
  };

  {
    Row row;
    row.name = "push";
    auto sys = build(row.per_query);
    const Stopwatch watch;
    for (const auto& ev : events) sys->push(ev.stream, ev.tuple);
    row.wall_s = watch.seconds();
    finish(std::move(row));
  }

  {
    Row row;
    row.name = "run:2-shard";
    auto sys = build(row.per_query);
    middleware::Cosmos::RunOptions opts;
    opts.shards = 2;
    opts.batch_size = 256;
    opts.tick_ms = 30 * 60'000;
    const Stopwatch watch;
    const auto report = sys->run(events, opts);
    row.wall_s = watch.seconds();
    row.e2e_p50_us = report.e2e_percentile_us(50.0);
    row.e2e_p99_us = report.e2e_percentile_us(99.0);
    finish(std::move(row));
  }

  for (const std::size_t workers : {2, 4}) {
    Row row;
    row.name = "fed:" + std::to_string(workers) + "w";
    auto fleet = spawn_fleet(workers);
    auto sys = build(row.per_query);
    middleware::Cosmos::FederationOptions opts;
    opts.workers = fleet.endpoints;
    opts.batch_size = 256;
    opts.tick_ms = 30 * 60'000;
    opts.max_inflight_chunks = 4;
    const Stopwatch watch;
    const auto report = sys->run_federated(events, opts);
    row.wall_s = watch.seconds();
    std::uint64_t wire_bytes = 0;
    for (const auto& link : report.federation.links) {
      wire_bytes += link.bytes_sent + link.bytes_received;
    }
    row.wire_bytes_per_tuple =
        static_cast<double>(wire_bytes) / static_cast<double>(events.size());
    row.e2e_p50_us = report.e2e_percentile_us(50.0);
    row.e2e_p99_us = report.e2e_percentile_us(99.0);
    finish(std::move(row));
    for (auto& p : fleet.procs) {
      if (p.wait() != 0) std::printf("!! worker exited non-zero\n");
    }
  }

  {
    // Peer-link topology: execute batches travel worker-to-worker, the
    // driver ships compact route decisions. Wire bytes here include the
    // peer-link traffic, so the comparison against fed:2w is apples to
    // apples for total bytes moved.
    Row row;
    row.name = "fed:2w-peer";
    auto fleet = spawn_fleet(2);
    auto sys = build(row.per_query);
    middleware::Cosmos::FederationOptions opts;
    opts.workers = fleet.endpoints;
    opts.batch_size = 256;
    opts.tick_ms = 30 * 60'000;
    opts.max_inflight_chunks = 4;
    opts.peer_links = true;
    const Stopwatch watch;
    const auto report = sys->run_federated(events, opts);
    row.wall_s = watch.seconds();
    std::uint64_t wire_bytes = report.federation.peer_bytes;
    for (const auto& link : report.federation.links) {
      wire_bytes += link.bytes_sent + link.bytes_received;
    }
    row.wire_bytes_per_tuple =
        static_cast<double>(wire_bytes) / static_cast<double>(events.size());
    row.e2e_p50_us = report.e2e_percentile_us(50.0);
    row.e2e_p99_us = report.e2e_percentile_us(99.0);
    if (report.federation.driver_execute_bytes != 0) {
      std::printf("!! peer-link run shipped execute bytes from the driver\n");
    }
    finish(std::move(row));
    for (auto& p : fleet.procs) {
      if (p.wait() != 0) std::printf("!! worker exited non-zero\n");
    }
  }

  double journal_bytes_per_tuple = 0.0;
  {
    // Durable run journal on (default fsync-on-commit policy, periodic
    // checkpoints): the overhead row for docs/durability.md. Every routed
    // execute is journaled, so the cost scales with data volume.
    Row row;
    row.name = "fed:2w-journal";
    char jdir[] = "/tmp/cosmos_bench_journal_XXXXXX";
    if (::mkdtemp(jdir) == nullptr) {
      std::printf("!! mkdtemp failed, skipping journal config\n");
      return 1;
    }
    auto fleet = spawn_fleet(2);
    auto sys = build(row.per_query);
    middleware::Cosmos::FederationOptions opts;
    opts.workers = fleet.endpoints;
    opts.batch_size = 256;
    opts.tick_ms = 30 * 60'000;
    opts.max_inflight_chunks = 4;
    opts.journal.dir = jdir;
    opts.journal.checkpoint_every_ms = 60 * 60'000;
    const Stopwatch watch;
    const auto report = sys->run_federated(events, opts);
    row.wall_s = watch.seconds();
    journal_bytes_per_tuple =
        static_cast<double>(report.federation.journal_bytes) /
        static_cast<double>(events.size());
    row.wire_bytes_per_tuple = rows[2].wire_bytes_per_tuple;  // same star path
    row.e2e_p50_us = report.e2e_percentile_us(50.0);
    row.e2e_p99_us = report.e2e_percentile_us(99.0);
    std::printf("journal: %.1f journal bytes/tuple, %llu fsyncs\n",
                journal_bytes_per_tuple,
                static_cast<unsigned long long>(report.federation.journal_fsyncs));
    finish(std::move(row));
    for (auto& p : fleet.procs) {
      if (p.wait() != 0) std::printf("!! worker exited non-zero\n");
    }
    std::error_code ec;
    std::filesystem::remove_all(jdir, ec);
  }
  bool identical = true;
  for (const auto& row : rows) {
    if (row.per_query != rows[0].per_query) {
      identical = false;
      std::printf("!! per-query result mismatch: %s vs push\n",
                  row.name.c_str());
    }
  }
  std::printf("per-query result counts identical across configs: %s\n",
              identical ? "yes" : "NO");

  const double tuples = static_cast<double>(events.size());
  const Row& run2 = rows[1];
  const Row& fed2 = rows[2];
  const Row& fed4 = rows[3];
  const Row& fedp = rows[4];
  const Row& fedj = rows[5];
  std::printf("federated 2w vs in-process 2-shard: %.2fx wall "
              "(%.1f wire bytes/tuple)\n",
              run2.wall_s / fed2.wall_s, fed2.wire_bytes_per_tuple);
  std::printf("e2e latency p50/p99: run-2shard %.0f/%.0fus, fed-2w "
              "%.0f/%.0fus\n",
              run2.e2e_p50_us, run2.e2e_p99_us, fed2.e2e_p50_us,
              fed2.e2e_p99_us);

  write_bench_json(
      "federation",
      {{"tuples", tuples},
       {"push_tuples_per_s", tuples / rows[0].wall_s},
       {"run_tuples_per_s_2shard", tuples / run2.wall_s},
       {"fed_tuples_per_s_2w", tuples / fed2.wall_s},
       {"fed_tuples_per_s_4w", tuples / fed4.wall_s},
       {"fed_vs_run_wall_ratio_2w", run2.wall_s / fed2.wall_s},
       {"wire_bytes_per_tuple_2w", fed2.wire_bytes_per_tuple},
       {"fed_peer_tuples_per_s_2w", tuples / fedp.wall_s},
       {"fed_peer_wire_bytes_per_tuple_2w", fedp.wire_bytes_per_tuple},
       {"fed_journal_tuples_per_s_2w", tuples / fedj.wall_s},
       {"fed_journal_bytes_per_tuple_2w", journal_bytes_per_tuple},
       {"fed_journal_vs_plain_wall_ratio_2w", fed2.wall_s / fedj.wall_s},
       {"e2e_p50_us_run_2shard", run2.e2e_p50_us},
       {"e2e_p99_us_run_2shard", run2.e2e_p99_us},
       {"fed_e2e_p50_us_2w", fed2.e2e_p50_us},
       {"fed_e2e_p99_us_2w", fed2.e2e_p99_us},
       {"results_identical", identical ? 1.0 : 0.0}});
  return identical ? 0 : 1;
}
