// Tuple schemas and tuples.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stream/value.h"

namespace cosmos::stream {

/// Milliseconds since an arbitrary epoch.
using Timestamp = std::int64_t;

struct Field {
  std::string name;
  ValueType type = ValueType::kDouble;
};

/// Ordered, named fields. Field names are unique within a schema.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  [[nodiscard]] std::size_t size() const noexcept { return fields_.size(); }
  [[nodiscard]] const Field& field(std::size_t i) const { return fields_.at(i); }
  [[nodiscard]] const std::vector<Field>& fields() const noexcept {
    return fields_;
  }
  /// Index of a field by name, or nullopt.
  [[nodiscard]] std::optional<std::size_t> index_of(
      const std::string& name) const noexcept;

  /// Concatenation, prefixing each side's field names with "<alias>.".
  [[nodiscard]] static Schema join(const Schema& left,
                                   const std::string& left_alias,
                                   const Schema& right,
                                   const std::string& right_alias);

 private:
  std::vector<Field> fields_;
};

/// A tuple: values aligned with some schema, plus a timestamp.
struct Tuple {
  Timestamp ts = 0;
  std::vector<Value> values;

  [[nodiscard]] const Value& at(std::size_t i) const { return values.at(i); }
};

}  // namespace cosmos::stream
