#include "obs/trace.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace cosmos::obs {
namespace {

/// The tracer is process-global: each test runs its own session and the
/// fixture guarantees recording is off again afterwards.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { (void)Tracer::instance().end_session(); }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(Tracer::instance().enabled());
  { const Span span{"noop", "test", 1}; }
  Tracer::instance().instant("noop", "test");
  Tracer::instance().begin_session();
  // Only what is recorded after begin_session shows up.
  EXPECT_TRUE(Tracer::instance().end_session().empty());
}

TEST_F(TraceTest, SpansCarryNameCategoryArgAndDuration) {
  Tracer::instance().begin_session();
  { const Span span{"work", "unit", 42}; }
  Tracer::instance().instant("tick", "unit", 7);
  const auto spans = Tracer::instance().end_session();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].cat, "unit");
  EXPECT_EQ(spans[0].arg, 42u);
  EXPECT_FALSE(spans[0].instant);
  EXPECT_GT(spans[0].start_ns, 0u);
  EXPECT_EQ(spans[1].name, "tick");
  EXPECT_TRUE(spans[1].instant);
  EXPECT_EQ(spans[1].arg, 7u);
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
}

TEST_F(TraceTest, MultiThreadedRecordingGetsDistinctTids) {
  Tracer::instance().begin_session();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        const Span span{"task", "worker"};
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto spans = Tracer::instance().end_session();
  EXPECT_EQ(spans.size() + Tracer::instance().dropped(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  std::vector<std::uint32_t> tids;
  for (const auto& s : spans) tids.push_back(s.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(TraceTest, DrainWhileRecordingAndRingOverflowDropsNotBlocks) {
  Tracer::instance().begin_session();
  // Overflow one thread's ring: everything past capacity must be counted
  // as dropped, not block or crash.
  for (int i = 0; i < 10'000; ++i) {
    Tracer::instance().instant("e", "t");
  }
  auto first = Tracer::instance().drain();
  EXPECT_GT(first.size(), 0u);
  EXPECT_EQ(first.size() + Tracer::instance().dropped(), 10'000u);
  // After a drain the ring has room again.
  Tracer::instance().instant("late", "t");
  const auto second = Tracer::instance().drain();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].name, "late");
}

TEST_F(TraceTest, SessionRestartInvalidatesOldBuffers) {
  Tracer::instance().begin_session();
  { const Span span{"first", "t"}; }
  (void)Tracer::instance().end_session();
  Tracer::instance().begin_session();
  { const Span span{"second", "t"}; }
  const auto spans = Tracer::instance().end_session();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "second");
}

TEST_F(TraceTest, ChromeTraceJsonShape) {
  std::vector<CollectedSpan> spans;
  CollectedSpan a;
  a.name = "span \"quoted\"";
  a.cat = "driver";
  a.start_ns = 2'000'000;
  a.dur_ns = 500'000;
  a.arg = 3;
  a.tid = 1;
  a.pid = 0;
  spans.push_back(a);
  CollectedSpan b;
  b.name = "migration";
  b.cat = "driver";
  b.start_ns = 2'100'000;
  b.instant = true;
  b.tid = 2;
  b.pid = 1;
  spans.push_back(b);

  const std::string path =
      ::testing::TempDir() + "trace_test_" +
      std::to_string(::getpid()) + ".json";
  write_chrome_trace(path, spans, {{0, "driver"}, {1, "worker 0"}});

  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  std::remove(path.c_str());

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("span \\\"quoted\\\""), std::string::npos);
  // Timestamps rebased to the earliest span: first event at ts 0.000.
  EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":500.000"), std::string::npos);
}

TEST_F(TraceTest, TraceSessionWritesMergedFile) {
  const std::string path =
      ::testing::TempDir() + "trace_session_" +
      std::to_string(::getpid()) + ".json";
  {
    TraceSession session{path};
    ASSERT_TRUE(session.active());
    session.add_process_name(0, "driver");
    { const Span span{"local", "driver"}; }
    CollectedSpan foreign;
    foreign.name = "remote";
    foreign.cat = "shard";
    foreign.start_ns = now_ns();
    foreign.dur_ns = 10;
    foreign.pid = 1;
    session.add_foreign({foreign});
  }  // destructor drains + writes
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  std::remove(path.c_str());
  EXPECT_NE(json.find("\"local\""), std::string::npos);
  EXPECT_NE(json.find("\"remote\""), std::string::npos);

  TraceSession inactive{""};
  EXPECT_FALSE(inactive.active());
  EXPECT_FALSE(Tracer::instance().enabled());
}

}  // namespace
}  // namespace cosmos::obs
