// Wall-clock aliases used for all runtime timing (the kakoune clock.hh
// idiom): one Clock for the whole code base so durations and time points
// are interchangeable across modules. Always steady_clock — timing code
// must never jump backwards with NTP adjustments.
#pragma once

#include <chrono>
#include <cstdint>
#include <ctime>

namespace cosmos {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using DurationMs = std::chrono::milliseconds;
using DurationNs = std::chrono::nanoseconds;

/// Seconds elapsed since `start`, as a double (for reporting).
[[nodiscard]] inline double seconds_since(TimePoint start) noexcept {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Steady-clock nanoseconds since an arbitrary (boot-stable) epoch. The
/// common timestamp base of the observability layer: ingest stamps, span
/// start/end times and federated stats samples all use it, so durations and
/// cross-thread deltas are directly comparable. On Linux the epoch is
/// CLOCK_MONOTONIC's, which is shared by every process on the host — the
/// property the federated trace merge and end-to-end latency stamps rely on
/// (workers and driver run on one host in this implementation).
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<DurationNs>(Clock::now().time_since_epoch())
          .count());
}

/// CPU seconds consumed by the calling thread. Unlike wall time this is
/// immune to preemption, so per-stage busy measurements stay meaningful
/// even when threads outnumber cores.
[[nodiscard]] inline double thread_cpu_seconds() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         1e-9 * static_cast<double>(ts.tv_nsec);
#else
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
#endif
}

}  // namespace cosmos
