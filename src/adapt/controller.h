// The adaptation loop behind one call: the ingest driver reports its
// virtual-clock position after every dispatched chunk, and the controller
// decides when to sample (LoadMonitor), whether to plan (MigrationPlanner)
// and how to execute (Migrator). Everything runs on the dispatcher thread
// between chunks — the only point where re-pinning is race-free.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "adapt/adapt.h"
#include "adapt/load_monitor.h"
#include "adapt/migrator.h"
#include "adapt/planner.h"
#include "runtime/runtime.h"

namespace cosmos::adapt {

class AdaptationController {
 public:
  /// Total window extent (stream-time ms) of the operators an engine
  /// hosts: the lever arm of the planning-time state model
  ///   state_bytes ≈ tuple_rate × window_ms × bytes_per_state_tuple.
  using WindowExtent = std::function<double(std::uint64_t engine)>;

  /// `shard_of` is the dispatcher's live pinning map (mutated on
  /// migration); `measured_state` is the post-drain probe the migration
  /// report uses (may be null). All calls must come from the dispatcher.
  AdaptationController(const AdaptOptions& options, runtime::Runtime& rt,
                       std::unordered_map<std::uint64_t, std::size_t>& shard_of,
                       WindowExtent window_ms,
                       Migrator::StateProbe measured_state);

  /// Driver hook: called after each chunk with the chunk's last stream
  /// timestamp. Samples / plans / migrates when the period elapsed.
  void on_chunk(stream::Timestamp now);

  [[nodiscard]] const AdaptationReport& report() const noexcept {
    return report_;
  }

 private:
  AdaptOptions options_;
  runtime::Runtime* rt_;
  std::unordered_map<std::uint64_t, std::size_t>* shard_of_;
  WindowExtent window_ms_;
  LoadMonitor monitor_;
  MigrationPlanner planner_;
  Migrator migrator_;
  AdaptationReport report_;
  bool clock_started_ = false;
  stream::Timestamp last_sample_ms_ = 0;
};

}  // namespace cosmos::adapt
