// Randomized differential harness for subscription matching: the indexed
// matcher vs the linear-scan oracle, driven through seeded
// subscribe/unsubscribe churn (including unsubscribe-then-resubscribe of
// the same id, which exercises slot reuse) interleaved with scalar and
// batched publishes. Deliveries must be identical in content AND order,
// and TrafficStats must match in total and per directed link. Wired into
// the integration CTest label (see tests/CMakeLists.txt) so it runs with
// the differential grid in Release and under TSan.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/topology.h"
#include "pubsub/broker_network.h"
#include "runtime/tuple_batch.h"
#include "stream/predicate.h"

namespace cosmos::pubsub {
namespace {

using stream::CmpOp;
using stream::FieldRef;
using stream::Predicate;
using stream::PredicatePtr;
using stream::Schema;
using stream::Tuple;
using stream::Value;
using stream::ValueType;

Schema churn_schema() {
  return Schema{{{"snowHeight", ValueType::kDouble},
                 {"temperature", ValueType::kDouble},
                 {"stationId", ValueType::kInt},
                 {"label", ValueType::kString}}};
}

/// Every filter shape the matcher must handle: indexable equalities and
/// ranges (int, double, string, timestamp), residual-bearing conjunctions,
/// scan-list shapes (OR, NOT, TimeBand, catch-all), and lenient may-throw
/// filters over attributes the stream lacks.
PredicatePtr random_filter(Rng& rng) {
  const auto station = [&] {
    return Predicate::cmp(FieldRef{"", "stationId"}, CmpOp::kEq,
                          Value{rng.next_range(0, 7)});
  };
  switch (rng.next_below(12)) {
    case 0:
      return Predicate::always_true();
    case 1:
      return station();
    case 2:
      return Predicate::cmp(FieldRef{"", "label"}, CmpOp::kEq,
                            Value{std::string(
                                1, static_cast<char>('a' + rng.next_below(3)))});
    case 3: {
      const double lo = rng.next_double(-5.0, 5.0);
      return Predicate::conj(
          {Predicate::cmp(FieldRef{"", "temperature"}, CmpOp::kGe, Value{lo}),
           Predicate::cmp(FieldRef{"", "temperature"}, CmpOp::kLt,
                          Value{lo + rng.next_double(0.0, 4.0)})});
    }
    case 4:
      return Predicate::cmp(FieldRef{"", "snowHeight"},
                            rng.next_bool(0.5) ? CmpOp::kGt : CmpOp::kLe,
                            Value{rng.next_double(-5.0, 5.0)});
    case 5:  // equality anchor + range residual
      return Predicate::conj(
          {station(), Predicate::cmp(FieldRef{"", "snowHeight"}, CmpOp::kGt,
                                     Value{rng.next_double(-5.0, 5.0)})});
    case 6:  // timestamp range anchor
      return Predicate::cmp(FieldRef{"", "timestamp"}, CmpOp::kGe,
                            Value{rng.next_range(0, 400)});
    case 7:
      return Predicate::disj({station(), station()});
    case 8:
      return Predicate::negate(station());
    case 9:  // kNe is residual-only: indexable nothing, still conjunctive
      return Predicate::conj(
          {Predicate::cmp(FieldRef{"", "stationId"}, CmpOp::kNe,
                          Value{rng.next_range(0, 7)}),
           Predicate::cmp(FieldRef{"", "temperature"}, CmpOp::kLe,
                          Value{rng.next_double(-5.0, 5.0)})});
    case 10:  // lenient: attribute the stream lacks
      return Predicate::cmp(FieldRef{"", "humidity"}, CmpOp::kGt,
                            Value{rng.next_double(0.0, 1.0)});
    default:  // TimeBand over ts and an int column (scan shape)
      return Predicate::time_band(FieldRef{"", "timestamp"},
                                  FieldRef{"", "stationId"},
                                  rng.next_range(0, 300));
  }
}

struct Harness {
  net::Topology topo{4};
  std::vector<NodeId> nodes{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}};
  net::LatencyMatrix lat;
  BrokerNetwork indexed;
  BrokerNetwork linear;
  BrokerPartition* part_indexed = nullptr;
  BrokerPartition* part_linear = nullptr;
  /// Deque: stable addresses, both partitions share the same objects.
  std::deque<Subscription> storage;

  Harness()
      : lat{[this] {
          topo.add_edge(NodeId{0}, NodeId{1}, 10.0);
          topo.add_edge(NodeId{1}, NodeId{2}, 100.0);
          topo.add_edge(NodeId{2}, NodeId{3}, 10.0);
          return net::LatencyMatrix{topo, nodes};
        }()},
        indexed{nodes, lat, BrokerNetwork::Options{true}},
        linear{nodes, lat, BrokerNetwork::Options{false}} {
    indexed.advertise("S", NodeId{0}, churn_schema());
    linear.advertise("S", NodeId{0}, churn_schema());
    part_indexed = indexed.partition("S");
    part_linear = linear.partition("S");
  }

  void subscribe(SubscriptionId id, Rng& rng) {
    Subscription sub;
    sub.id = id;
    sub.subscriber = NodeId{static_cast<NodeId::value_type>(
        rng.next_below(4))};
    sub.streams = {"S"};
    if (rng.next_bool(0.3)) sub.projection = {"snowHeight", "label"};
    sub.filter = random_filter(rng);
    storage.push_back(std::move(sub));
    part_indexed->add_subscription(&storage.back());
    part_linear->add_subscription(&storage.back());
  }

  void unsubscribe(SubscriptionId id) {
    part_indexed->remove_subscription(id);
    part_linear->remove_subscription(id);
  }
};

Tuple random_row(Rng& rng, stream::Timestamp ts) {
  return Tuple{ts,
               {Value{rng.next_double(-5.0, 5.0)},
                Value{rng.next_double(-5.0, 5.0)}, Value{rng.next_range(0, 7)},
                Value{std::string(1, static_cast<char>(
                                         'a' + rng.next_below(3)))}}};
}

/// (sub id, row ts) trace entries in delivery order.
using DeliveryLog = std::vector<std::pair<std::uint32_t, stream::Timestamp>>;

DeliveryLog batch_log(BrokerPartition& part, const runtime::TupleBatch& b) {
  std::vector<BatchDelivery> ds;
  part.match_batch(b, ds);
  DeliveryLog log;
  for (const auto& d : ds) {
    for (const auto r : d.rows) {
      log.emplace_back(d.sub->id.value(), d.source->ts(r));
    }
  }
  return log;
}

DeliveryLog scalar_log(BrokerPartition& part, const Tuple& t) {
  DeliveryLog log;
  part.match(t, [&log](const Subscription& sub, const Message& m) {
    log.emplace_back(sub.id.value(), m.tuple.ts);
  });
  return log;
}

TEST(MatchDifferential, IndexEqualsLinearUnderChurn) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng{seed * 7919};
    Harness h;
    std::vector<SubscriptionId> live;
    std::vector<SubscriptionId> dead;
    std::uint32_t next_id = 0;
    stream::Timestamp now = 0;
    std::size_t rows_delivered = 0;

    for (int step = 0; step < 240; ++step) {
      const double action = rng.next_double();
      if (action < 0.35 || live.empty()) {
        // Subscribe: a fresh id, or resubscribe a previously removed id
        // (new filter, same id — the slot-reuse path).
        SubscriptionId id{next_id};
        if (!dead.empty() && rng.next_bool(0.4)) {
          const std::size_t k = rng.next_below(dead.size());
          id = dead[k];
          dead.erase(dead.begin() + static_cast<std::ptrdiff_t>(k));
        } else {
          ++next_id;
        }
        h.subscribe(id, rng);
        live.push_back(id);
      } else if (action < 0.5) {
        const std::size_t k = rng.next_below(live.size());
        const SubscriptionId id = live[k];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
        dead.push_back(id);
        h.unsubscribe(id);
      } else if (action < 0.6) {
        const Tuple t = random_row(rng, ++now);
        EXPECT_EQ(scalar_log(*h.part_indexed, t),
                  scalar_log(*h.part_linear, t));
      } else {
        runtime::TupleBatch b{"S"};
        const std::size_t n = 1 + rng.next_below(48);
        for (std::size_t i = 0; i < n; ++i) {
          now += rng.next_below(3);  // duplicate timestamps included
          b.push_back(random_row(rng, now));
        }
        const DeliveryLog li = batch_log(*h.part_indexed, b);
        const DeliveryLog ll = batch_log(*h.part_linear, b);
        ASSERT_EQ(li, ll);
        rows_delivered += li.size();
      }
      ASSERT_EQ(h.part_indexed->subscription_count(),
                h.part_linear->subscription_count());
      ASSERT_EQ(h.part_indexed->subscription_count(), live.size());
    }
    // The run must have actually delivered something, or the equality
    // assertions above were vacuous.
    EXPECT_GT(rows_delivered, 0u);
    // Byte-identical accounting, in total and on every directed link.
    EXPECT_EQ(h.part_indexed->traffic(), h.part_linear->traffic());
    EXPECT_FALSE(h.part_indexed->traffic().links.empty());
  }
}

/// The facade path (publish/publish_batch through BrokerNetwork) with the
/// index on must keep matching the linear facade exactly — covering
/// subscribe-before-advertise replay and facade-side unsubscribe.
TEST(MatchDifferential, FacadesAgreeAcrossOptions) {
  Rng rng{424242};
  net::Topology topo{4};
  topo.add_edge(NodeId{0}, NodeId{1}, 10.0);
  topo.add_edge(NodeId{1}, NodeId{2}, 100.0);
  topo.add_edge(NodeId{2}, NodeId{3}, 10.0);
  const std::vector<NodeId> nodes{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}};
  const net::LatencyMatrix lat{topo, nodes};
  BrokerNetwork indexed{nodes, lat, BrokerNetwork::Options{true}};
  BrokerNetwork linear{nodes, lat, BrokerNetwork::Options{false}};

  // Half the subscriptions predate the advertisement.
  std::vector<SubscriptionId> ids_indexed;
  std::vector<SubscriptionId> ids_linear;
  const auto add_subs = [&](std::size_t count, Rng seeded) {
    for (std::size_t i = 0; i < count; ++i) {
      Rng fork = seeded.fork();
      Subscription sub;
      sub.subscriber =
          NodeId{static_cast<NodeId::value_type>(fork.next_below(4))};
      sub.streams = {"S"};
      sub.filter = random_filter(fork);
      Subscription copy = sub;
      ids_indexed.push_back(indexed.subscribe(std::move(sub)));
      ids_linear.push_back(linear.subscribe(std::move(copy)));
      seeded.next_u64();
    }
  };
  add_subs(20, rng.fork());
  indexed.advertise("S", NodeId{0}, churn_schema());
  linear.advertise("S", NodeId{0}, churn_schema());
  add_subs(20, rng.fork());

  stream::Timestamp now = 0;
  DeliveryLog li;
  DeliveryLog ll;
  for (int step = 0; step < 30; ++step) {
    if (!ids_indexed.empty() && rng.next_bool(0.2)) {
      const std::size_t k = rng.next_below(ids_indexed.size());
      indexed.unsubscribe(ids_indexed[k]);
      linear.unsubscribe(ids_linear[k]);
      ids_indexed.erase(ids_indexed.begin() + static_cast<std::ptrdiff_t>(k));
      ids_linear.erase(ids_linear.begin() + static_cast<std::ptrdiff_t>(k));
    }
    runtime::TupleBatch b{"S"};
    for (std::size_t i = 0; i < 16; ++i) {
      b.push_back(random_row(rng, ++now));
    }
    li.clear();
    ll.clear();
    indexed.publish_batch("S", b, [&li](const BatchDelivery& d) {
      for (const auto r : d.rows) {
        li.emplace_back(d.sub->id.value(), d.source->ts(r));
      }
    });
    linear.publish_batch("S", b, [&ll](const BatchDelivery& d) {
      for (const auto r : d.rows) {
        ll.emplace_back(d.sub->id.value(), d.source->ts(r));
      }
    });
    ASSERT_EQ(li, ll);
  }
  EXPECT_EQ(indexed.traffic(), linear.traffic());
}

}  // namespace
}  // namespace cosmos::pubsub
