#include "stream/window.h"

#include <gtest/gtest.h>

namespace cosmos::stream {
namespace {

TEST(WindowSpec, NowOnlyMatchesSameTimestamp) {
  const auto w = WindowSpec::now();
  EXPECT_TRUE(w.contains(100, 100));
  EXPECT_FALSE(w.contains(99, 100));
  EXPECT_FALSE(w.contains(101, 100));
}

TEST(WindowSpec, RangeWindow) {
  const auto w = WindowSpec::range_millis(50);
  EXPECT_TRUE(w.contains(100, 100));
  EXPECT_TRUE(w.contains(50, 100));
  EXPECT_FALSE(w.contains(49, 100));
  EXPECT_FALSE(w.contains(101, 100));  // future tuples out of window
}

TEST(WindowSpec, Unbounded) {
  const auto w = WindowSpec::unbounded();
  EXPECT_TRUE(w.contains(0, 1'000'000));
  EXPECT_FALSE(w.contains(2, 1));
}

TEST(WindowSpec, Covers) {
  EXPECT_TRUE(WindowSpec::range_millis(100).covers(WindowSpec::now()));
  EXPECT_TRUE(
      WindowSpec::range_millis(100).covers(WindowSpec::range_millis(100)));
  EXPECT_FALSE(
      WindowSpec::range_millis(99).covers(WindowSpec::range_millis(100)));
  EXPECT_TRUE(WindowSpec::unbounded().covers(WindowSpec::range_millis(1'000)));
  EXPECT_FALSE(WindowSpec::range_millis(1'000).covers(WindowSpec::unbounded()));
}

TEST(WindowSpec, ToString) {
  EXPECT_EQ(WindowSpec::now().to_string(), "[Now]");
  EXPECT_EQ(WindowSpec::range_millis(30 * 60'000).to_string(),
            "[Range 30 Minutes]");
  EXPECT_EQ(WindowSpec::range_millis(3'600'000).to_string(), "[Range 1 Hour]");
  EXPECT_EQ(WindowSpec::range_millis(123).to_string(), "[Range 123 Ms]");
  EXPECT_EQ(WindowSpec::unbounded().to_string(), "[Unbounded]");
}

}  // namespace
}  // namespace cosmos::stream
