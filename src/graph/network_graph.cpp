#include "graph/network_graph.h"

#include <stdexcept>

namespace cosmos::graph {

NetworkGraph::VertexIndex NetworkGraph::add_vertex(NetworkVertex v) {
  if (finalized_) {
    throw std::logic_error{"NetworkGraph: add_vertex after finalize"};
  }
  vertices_.push_back(std::move(v));
  return static_cast<VertexIndex>(vertices_.size() - 1);
}

void NetworkGraph::finalize_vertices() {
  if (finalized_) return;
  finalized_ = true;
  stride_ = vertices_.size();
  dist_.assign(stride_ * stride_, 0.0);
}

void NetworkGraph::set_distance(VertexIndex a, VertexIndex b, double latency) {
  if (!finalized_) {
    throw std::logic_error{"NetworkGraph: set_distance before finalize"};
  }
  if (a >= size() || b >= size() || latency < 0) {
    throw std::invalid_argument{"NetworkGraph: bad distance"};
  }
  dist_[a * stride_ + b] = latency;
  dist_[b * stride_ + a] = latency;
}

double NetworkGraph::total_capability() const noexcept {
  double total = 0.0;
  for (const auto& v : vertices_) {
    if (v.assignable) total += v.capability;
  }
  return total;
}

NetworkGraph::VertexIndex NetworkGraph::find_assignable(
    NodeId node) const noexcept {
  for (VertexIndex i = 0; i < vertices_.size(); ++i) {
    if (vertices_[i].assignable && vertices_[i].node == node) return i;
  }
  return kNone;
}

NetworkGraph::VertexIndex NetworkGraph::find_by_node(
    NodeId node) const noexcept {
  for (VertexIndex i = 0; i < vertices_.size(); ++i) {
    if (vertices_[i].node == node) return i;
  }
  return kNone;
}

}  // namespace cosmos::graph
