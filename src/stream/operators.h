// Push-based streaming operators: filter, project, sliding-window join.
//
// Operators form a tree; each operator pushes produced tuples into its
// downstream consumer. Tuples are timestamp-ordered per input stream
// (enforced by the engine).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stream/predicate.h"
#include "stream/schema.h"
#include "stream/window.h"

namespace cosmos::stream {

/// Downstream consumer of produced tuples.
using Sink = std::function<void(const Tuple&)>;

/// Single-input filter: forwards tuples satisfying the predicate.
class FilterOp {
 public:
  /// `alias` is the name the predicate uses to reference this input.
  FilterOp(std::string alias, const Schema* schema, PredicatePtr predicate,
           Sink sink);

  void push(const Tuple& t);

  [[nodiscard]] std::size_t seen() const noexcept { return seen_; }
  [[nodiscard]] std::size_t passed() const noexcept { return passed_; }

 private:
  std::string alias_;
  const Schema* schema_;
  PredicatePtr predicate_;
  Sink sink_;
  std::size_t seen_ = 0;
  std::size_t passed_ = 0;
};

/// Single-input projection onto a subset of fields (by input index).
class ProjectOp {
 public:
  ProjectOp(std::vector<std::size_t> keep_indices, Sink sink);

  void push(const Tuple& t);

 private:
  std::vector<std::size_t> keep_;
  Sink sink_;
};

/// Two-input sliding-window join. On arrival of a tuple from one side it is
/// matched against the other side's window contents under the join
/// predicate; output tuples concatenate left then right values and carry the
/// newer timestamp. State is pruned lazily by watermark.
class WindowJoinOp {
 public:
  struct Side {
    std::string alias;
    const Schema* schema = nullptr;
    WindowSpec window;
  };

  WindowJoinOp(Side left, Side right, PredicatePtr predicate, Sink sink);

  void push_left(const Tuple& t);
  void push_right(const Tuple& t);

  [[nodiscard]] std::size_t left_state_size() const noexcept {
    return left_buf_.size();
  }
  [[nodiscard]] std::size_t right_state_size() const noexcept {
    return right_buf_.size();
  }
  [[nodiscard]] std::size_t emitted() const noexcept { return emitted_; }

 private:
  void probe(const Tuple& incoming, bool incoming_is_left);
  static void prune(std::deque<Tuple>& buf, const WindowSpec& window,
                    Timestamp now);

  Side left_;
  Side right_;
  PredicatePtr predicate_;
  Sink sink_;
  std::deque<Tuple> left_buf_;
  std::deque<Tuple> right_buf_;
  std::size_t emitted_ = 0;
};

}  // namespace cosmos::stream
