#include "cql/lexer.h"

#include <cctype>
#include <charconv>
#include <unordered_set>

namespace cosmos::cql {
namespace {

const std::unordered_set<std::string>& keywords() {
  static const std::unordered_set<std::string> kws{
      "SELECT", "FROM",    "WHERE",  "AND",       "OR",     "NOT",
      "RANGE",  "NOW",     "UNBOUNDED", "HOUR",   "HOURS",  "MINUTE",
      "MINUTES", "SECOND", "SECONDS",   "MS",     "MILLISECONDS", "AS",
  };
  return kws;
}

std::string upper(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

}  // namespace

ParseError::ParseError(const std::string& message, std::size_t offset)
    : std::runtime_error{message + " (at offset " + std::to_string(offset) +
                         ")"},
      offset_(offset) {}

std::vector<Token> tokenize(const std::string& input) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      std::string word = input.substr(i, j - i);
      const std::string up = upper(word);
      if (keywords().contains(up)) {
        out.push_back({TokenKind::kKeyword, up, 0.0, start});
      } else {
        out.push_back({TokenKind::kIdent, std::move(word), 0.0, start});
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])) &&
         (out.empty() || out.back().kind == TokenKind::kSymbol ||
          out.back().kind == TokenKind::kKeyword))) {
      std::size_t j = i + 1;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.')) {
        ++j;
      }
      const std::string text = input.substr(i, j - i);
      double value = 0.0;
      const auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), value);
      if (ec != std::errc{} || ptr != text.data() + text.size()) {
        throw ParseError{"bad number '" + text + "'", start};
      }
      out.push_back({TokenKind::kNumber, text, value, start});
      i = j;
      continue;
    }
    if (c == '\'') {
      std::size_t j = i + 1;
      while (j < n && input[j] != '\'') ++j;
      if (j == n) throw ParseError{"unterminated string", start};
      out.push_back(
          {TokenKind::kString, input.substr(i + 1, j - i - 1), 0.0, start});
      i = j + 1;
      continue;
    }
    // Multi-char operators first.
    const auto two = input.substr(i, 2);
    if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
      out.push_back({TokenKind::kSymbol, two == "<>" ? "!=" : two, 0.0, start});
      i += 2;
      continue;
    }
    static const std::string singles = "()[],.*<>=";
    if (singles.find(c) != std::string::npos) {
      out.push_back({TokenKind::kSymbol, std::string(1, c), 0.0, start});
      ++i;
      continue;
    }
    throw ParseError{std::string{"unexpected character '"} + c + "'", start};
  }
  out.push_back({TokenKind::kEnd, "", 0.0, n});
  return out;
}

}  // namespace cosmos::cql
