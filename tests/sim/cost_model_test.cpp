#include "sim/cost_model.h"

#include <gtest/gtest.h>

namespace cosmos::sim {
namespace {

/// Hand-built line topology: src(0) - r(1) - p2 - p3, all links 1 ms.
struct LineFixture {
  net::Topology topo{4};
  net::Deployment deployment;
  query::SubstreamSpace space{{NodeId{0}, NodeId{0}}, {10.0, 5.0}};

  LineFixture() {
    topo.add_edge(NodeId{0}, NodeId{1}, 1.0);
    topo.add_edge(NodeId{1}, NodeId{2}, 1.0);
    topo.add_edge(NodeId{2}, NodeId{3}, 1.0);
    deployment.role = {net::NodeRole::kSource, net::NodeRole::kRouter,
                       net::NodeRole::kProcessor, net::NodeRole::kProcessor};
    deployment.sources = {NodeId{0}};
    deployment.processors = {NodeId{2}, NodeId{3}};
    deployment.capability = {0, 0, 1, 1};
    deployment.latencies = net::LatencyMatrix{
        topo, {NodeId{0}, NodeId{2}, NodeId{3}}};
  }

  query::InterestProfile profile(QueryId id, std::initializer_list<int> bits,
                                 NodeId proxy, double out) const {
    query::InterestProfile p;
    p.query = id;
    p.proxy = proxy;
    p.interest = BitVector{2};
    for (const int b : bits) p.interest.set(static_cast<std::size_t>(b));
    p.output_rate = out;
    return p;
  }
};

TEST(CostModel, SingleQuerySingleSubstream) {
  LineFixture f;
  CostModel cost{f.topo, f.deployment};
  std::unordered_map<QueryId, NodeId> placement{{QueryId{0}, NodeId{2}}};
  std::unordered_map<QueryId, query::InterestProfile> profiles{
      {QueryId{0}, f.profile(QueryId{0}, {0}, NodeId{2}, 1.0)}};
  const auto b = cost.communication_cost(placement, profiles, f.space);
  // Substream 0 (rate 10) travels 0 -> 2: latency 2ms.
  EXPECT_DOUBLE_EQ(b.source_cost, 20.0);
  EXPECT_DOUBLE_EQ(b.result_cost, 0.0);  // local proxy
  EXPECT_DOUBLE_EQ(b.total(), 20.0);
}

TEST(CostModel, SharedSubstreamCountedOncePerLink) {
  LineFixture f;
  CostModel cost{f.topo, f.deployment};
  // Two queries on both processors, same substream: path 0->3 covers 0->2,
  // so the shared prefix is charged once: 3 links total, not 5.
  std::unordered_map<QueryId, NodeId> placement{{QueryId{0}, NodeId{2}},
                                                {QueryId{1}, NodeId{3}}};
  std::unordered_map<QueryId, query::InterestProfile> profiles{
      {QueryId{0}, f.profile(QueryId{0}, {0}, NodeId{2}, 0.0)},
      {QueryId{1}, f.profile(QueryId{1}, {0}, NodeId{3}, 0.0)}};
  const auto b = cost.communication_cost(placement, profiles, f.space);
  EXPECT_DOUBLE_EQ(b.source_cost, 30.0);  // 10 B/s * 3 ms of links
}

TEST(CostModel, ColocationEliminatesDuplicateTransfer) {
  LineFixture f;
  CostModel cost{f.topo, f.deployment};
  std::unordered_map<QueryId, query::InterestProfile> profiles{
      {QueryId{0}, f.profile(QueryId{0}, {0}, NodeId{2}, 0.0)},
      {QueryId{1}, f.profile(QueryId{1}, {0}, NodeId{3}, 0.0)}};
  const std::unordered_map<QueryId, NodeId> together{
      {QueryId{0}, NodeId{2}}, {QueryId{1}, NodeId{2}}};
  const std::unordered_map<QueryId, NodeId> apart{{QueryId{0}, NodeId{2}},
                                                  {QueryId{1}, NodeId{3}}};
  const double c_together =
      cost.communication_cost(together, profiles, f.space).source_cost;
  const double c_apart =
      cost.communication_cost(apart, profiles, f.space).source_cost;
  EXPECT_LT(c_together, c_apart);
  EXPECT_DOUBLE_EQ(c_together, 20.0);
}

TEST(CostModel, ResultCostUsesLatencyAndSkipsLocal) {
  LineFixture f;
  CostModel cost{f.topo, f.deployment};
  std::unordered_map<QueryId, NodeId> placement{{QueryId{0}, NodeId{3}}};
  std::unordered_map<QueryId, query::InterestProfile> profiles{
      {QueryId{0}, f.profile(QueryId{0}, {}, NodeId{2}, 4.0)}};
  const auto b = cost.communication_cost(placement, profiles, f.space);
  EXPECT_DOUBLE_EQ(b.result_cost, 4.0);  // 4 B/s * 1 ms (3 -> 2)
  EXPECT_DOUBLE_EQ(b.source_cost, 0.0);  // no interest bits
}

TEST(CostModel, DistinctSubstreamsAddUp) {
  LineFixture f;
  CostModel cost{f.topo, f.deployment};
  std::unordered_map<QueryId, NodeId> placement{{QueryId{0}, NodeId{2}}};
  std::unordered_map<QueryId, query::InterestProfile> profiles{
      {QueryId{0}, f.profile(QueryId{0}, {0, 1}, NodeId{2}, 0.0)}};
  const auto b = cost.communication_cost(placement, profiles, f.space);
  EXPECT_DOUBLE_EQ(b.source_cost, (10.0 + 5.0) * 2.0);
}

TEST(CostModel, UnplacedQueriesIgnored) {
  LineFixture f;
  CostModel cost{f.topo, f.deployment};
  std::unordered_map<QueryId, NodeId> placement{{QueryId{9}, NodeId{2}}};
  std::unordered_map<QueryId, query::InterestProfile> profiles;  // empty
  const auto b = cost.communication_cost(placement, profiles, f.space);
  EXPECT_DOUBLE_EQ(b.total(), 0.0);
}

}  // namespace
}  // namespace cosmos::sim
