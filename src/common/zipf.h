// Zipfian sampling over ranked items.
//
// The paper's workload draws each query's substreams from a zipfian
// distribution with theta = 0.8 (Section 4.1), with a per-group random
// permutation so different user groups have different hot spots.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace cosmos {

/// Samples ranks in [0, n) with P(rank = r) proportional to 1/(r+1)^theta.
///
/// Uses an inverse-CDF table (O(log n) per sample after O(n) setup), which is
/// exact rather than the approximate rejection method.
class ZipfDistribution {
 public:
  /// Precondition: n > 0, theta >= 0 (theta == 0 degenerates to uniform).
  ZipfDistribution(std::size_t n, double theta);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  /// Probability mass of a given rank.
  [[nodiscard]] double pmf(std::size_t rank) const noexcept;

 private:
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r)
};

}  // namespace cosmos
