#include "common/rng.h"

namespace cosmos {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t split_mix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = split_mix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded sampling with rejection to remove
  // modulo bias.
  __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      m = static_cast<__uint128_t>(next_u64()) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  // 53 uniform mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p_true) noexcept { return next_double() < p_true; }

Rng Rng::fork() noexcept { return Rng{next_u64()}; }

}  // namespace cosmos
