#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace cosmos {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng{9};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng{11};
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_LT(min, 0.05);
  EXPECT_GT(max, 0.95);
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng{13};
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{17};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIsIndependent) {
  Rng a{23};
  Rng child = a.fork();
  // The child should not replay the parent's stream.
  Rng b{23};
  (void)b.next_u64();  // parent consumed one value to fork
  EXPECT_NE(child.next_u64(), b.next_u64());
}

TEST(SplitMix64, KnownFirstOutputs) {
  // Reference values from the SplitMix64 reference implementation, seed 0.
  std::uint64_t s = 0;
  EXPECT_EQ(split_mix64(s), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(split_mix64(s), 0x6e789e6aa1b965f4ULL);
}

}  // namespace
}  // namespace cosmos
