#include "graph/edge_model.h"

#include <gtest/gtest.h>

namespace cosmos::graph {
namespace {

query::SubstreamSpace make_space() {
  // Substreams 0,1 at node 10; 2,3 at node 11. Rates 1,2,4,8.
  return query::SubstreamSpace{{NodeId{10}, NodeId{10}, NodeId{11}, NodeId{11}},
                               {1.0, 2.0, 4.0, 8.0}};
}

query::InterestProfile profile(QueryId id, std::initializer_list<int> bits,
                               NodeId proxy, double out_rate) {
  query::InterestProfile p;
  p.query = id;
  p.proxy = proxy;
  p.interest = BitVector{4};
  for (const int b : bits) p.interest.set(static_cast<std::size_t>(b));
  p.output_rate = out_rate;
  query::refresh_load(p, make_space());
  return p;
}

TEST(EdgeModel, SourceMasks) {
  const auto space = make_space();
  EdgeModel m{space};
  EXPECT_EQ(m.source_mask(NodeId{10}).count(), 2u);
  EXPECT_EQ(m.source_mask(NodeId{11}).count(), 2u);
  EXPECT_EQ(m.source_mask(NodeId{99}).count(), 0u);
}

TEST(EdgeModel, QqWeightIsOverlapRate) {
  const auto space = make_space();
  EdgeModel m{space};
  const auto a = to_query_vertex(profile(QueryId{0}, {0, 2}, NodeId{1}, 1));
  const auto b = to_query_vertex(profile(QueryId{1}, {2, 3}, NodeId{1}, 1));
  EXPECT_DOUBLE_EQ(m.qq_weight(a, b), 4.0);
}

TEST(EdgeModel, QnWeightCombinesSourceAndProxy) {
  const auto space = make_space();
  EdgeModel m{space};
  const auto q = to_query_vertex(profile(QueryId{0}, {0, 1, 2}, NodeId{10}, 5));
  QueryVertex n;
  n.kind = QVertexKind::kNetwork;
  n.node = NodeId{10};
  // Source component 1+2 = 3 plus result component 5 (proxy == node 10).
  EXPECT_DOUBLE_EQ(m.qn_weight(q, n), 8.0);
  n.node = NodeId{11};
  EXPECT_DOUBLE_EQ(m.qn_weight(q, n), 4.0);  // source only
}

TEST(EdgeModel, RateBySource) {
  const auto space = make_space();
  EdgeModel m{space};
  const auto q = to_query_vertex(profile(QueryId{0}, {1, 2, 3}, NodeId{1}, 0));
  const auto by_source = m.rate_by_source(q);
  ASSERT_EQ(by_source.size(), 2u);
  EXPECT_DOUBLE_EQ(by_source[0].second, 2.0);   // node 10
  EXPECT_DOUBLE_EQ(by_source[1].second, 12.0);  // node 11
}

TEST(BuildQueryGraph, SmallGraphHasExpectedStructure) {
  const auto space = make_space();
  EdgeModel m{space};
  std::vector<QueryVertex> items{
      to_query_vertex(profile(QueryId{0}, {0, 1}, NodeId{20}, 1.0)),
      to_query_vertex(profile(QueryId{1}, {1, 2}, NodeId{21}, 2.0)),
  };
  Rng rng{1};
  QueryGraphBuildParams params;
  const auto g = build_query_graph(items, m, params, nullptr, rng);
  // 2 q-vertices + n-vertices: sources 10,11 and proxies 20,21.
  EXPECT_EQ(g.size(), 6u);
  // q0 -- q1 overlap edge: substream 1, rate 2.
  bool found = false;
  for (const auto& e : g.neighbors(0)) {
    if (e.to == 1) {
      found = true;
      EXPECT_DOUBLE_EQ(e.weight, 2.0);
    }
  }
  EXPECT_TRUE(found);
  // q0 -- source(10) edge weight 3 (substreams 0,1).
  const auto s10 = g.find_network_vertex(NodeId{10});
  ASSERT_NE(s10, QueryGraph::kNone);
  double w = 0;
  for (const auto& e : g.neighbors(0)) {
    if (e.to == s10) w = e.weight;
  }
  EXPECT_DOUBLE_EQ(w, 3.0);
}

TEST(BuildQueryGraph, CluLabelsApplied) {
  const auto space = make_space();
  EdgeModel m{space};
  std::vector<QueryVertex> items{
      to_query_vertex(profile(QueryId{0}, {0}, NodeId{20}, 1.0))};
  const std::function<int(NodeId)> clu = [](NodeId n) {
    return n == NodeId{20} ? 2 : -1;
  };
  Rng rng{1};
  const auto g = build_query_graph(items, m, {}, &clu, rng);
  const auto proxy = g.find_network_vertex(NodeId{20});
  const auto src = g.find_network_vertex(NodeId{10});
  ASSERT_NE(proxy, QueryGraph::kNone);
  ASSERT_NE(src, QueryGraph::kNone);
  EXPECT_EQ(g.vertex(proxy).clu, 2);
  EXPECT_EQ(g.vertex(src).clu, -1);
}

TEST(BuildQueryGraph, SparsifiedKeepsTopEdgesPerVertex) {
  // Many queries sharing hot substreams: sparsified construction must cap
  // per-vertex overlap degree but keep the heavy edges.
  const std::size_t nsub = 64;
  std::vector<NodeId> origin(nsub, NodeId{1});
  std::vector<double> rate(nsub, 1.0);
  query::SubstreamSpace space{origin, rate};
  EdgeModel m{space};

  Rng wrng{3};
  std::vector<QueryVertex> items;
  for (int i = 0; i < 60; ++i) {
    QueryVertex v;
    v.kind = QVertexKind::kQuery;
    v.weight = 1;
    v.interest = BitVector{nsub};
    for (int b = 0; b < 8; ++b) v.interest.set(wrng.next_below(nsub));
    v.queries = {QueryId{static_cast<QueryId::value_type>(i)}};
    items.push_back(std::move(v));
  }
  QueryGraphBuildParams params;
  params.exact_pair_threshold = 10;  // force the sparsified path
  params.max_overlap_degree = 4;
  params.candidate_sample = 16;
  Rng rng{4};
  const auto g = build_query_graph(items, m, params, nullptr, rng);
  for (std::size_t i = 0; i < items.size(); ++i) {
    std::size_t qq_degree = 0;
    for (const auto& e : g.neighbors(static_cast<QueryGraph::VertexIndex>(i))) {
      if (!g.vertex(e.to).is_n()) ++qq_degree;
    }
    // Each vertex proposes <= max_overlap_degree edges; symmetric insertions
    // from other vertices can add a few more, but the degree stays bounded.
    EXPECT_LE(qq_degree, 2 * params.max_overlap_degree + params.candidate_sample / 2);
  }
}

}  // namespace
}  // namespace cosmos::graph
