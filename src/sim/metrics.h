// Small statistics helpers used by the benchmarks.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "net/deployment.h"
#include "query/interest.h"

namespace cosmos::sim {

[[nodiscard]] double mean(std::span<const double> xs) noexcept;
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Per-processor load of a placement (indexed like deployment.processors).
[[nodiscard]] std::vector<double> processor_loads(
    const std::unordered_map<QueryId, NodeId>& placement,
    const std::unordered_map<QueryId, query::InterestProfile>& profiles,
    const net::Deployment& deployment);

/// Standard deviation of per-processor loads.
[[nodiscard]] double load_stddev(
    const std::unordered_map<QueryId, NodeId>& placement,
    const std::unordered_map<QueryId, query::InterestProfile>& profiles,
    const net::Deployment& deployment);

}  // namespace cosmos::sim
