#include "runtime/tuple_batch.h"

#include <stdexcept>

namespace cosmos::runtime {

void TupleBatch::push_back(const stream::Tuple& t) {
  if (width_ == kNoWidth) {
    width_ = t.values.size();
  } else if (t.values.size() != width_) {
    throw std::invalid_argument{
        "TupleBatch: width mismatch on " + stream_ + ": got " +
        std::to_string(t.values.size()) + " values, batch has " +
        std::to_string(width_)};
  }
  ts_.push_back(t.ts);
  values_.insert(values_.end(), t.values.begin(), t.values.end());
}

void TupleBatch::push_back(stream::Tuple&& t) {
  push_row(t.ts, std::move(t.values));
}

void TupleBatch::push_row(stream::Timestamp ts,
                          std::vector<stream::Value>&& values) {
  if (width_ == kNoWidth) {
    width_ = values.size();
  } else if (values.size() != width_) {
    throw std::invalid_argument{
        "TupleBatch: width mismatch on " + stream_ + ": got " +
        std::to_string(values.size()) + " values, batch has " +
        std::to_string(width_)};
  }
  ts_.push_back(ts);
  values_.insert(values_.end(), std::make_move_iterator(values.begin()),
                 std::make_move_iterator(values.end()));
}

const stream::Value& TupleBatch::at(std::size_t row, std::size_t col) const {
  if (row >= size() || col >= width()) {
    throw std::out_of_range{"TupleBatch: (" + std::to_string(row) + "," +
                            std::to_string(col) + ") out of range"};
  }
  return values_[row * width_ + col];
}

stream::Tuple TupleBatch::row(std::size_t i) const {
  stream::Tuple out;
  materialize(i, out);
  return out;
}

void TupleBatch::materialize(std::size_t i, stream::Tuple& out) const {
  if (i >= size()) {
    throw std::out_of_range{"TupleBatch: row " + std::to_string(i) +
                            " out of range"};
  }
  out.ts = ts_[i];
  const auto first = values_.begin() + static_cast<std::ptrdiff_t>(i * width_);
  out.values.assign(first, first + static_cast<std::ptrdiff_t>(width_));
}

bool TupleBatch::timestamps_ordered() const noexcept {
  for (std::size_t i = 1; i < ts_.size(); ++i) {
    if (ts_[i] < ts_[i - 1]) return false;
  }
  return true;
}

std::vector<TupleBatch> TupleBatch::split(std::size_t max_rows) const {
  if (max_rows == 0) {
    throw std::invalid_argument{"TupleBatch: split into zero-row chunks"};
  }
  std::vector<TupleBatch> out;
  for (std::size_t begin = 0; begin < size(); begin += max_rows) {
    const std::size_t end = std::min(size(), begin + max_rows);
    TupleBatch chunk{stream_};
    chunk.width_ = width_;
    chunk.ts_.assign(ts_.begin() + static_cast<std::ptrdiff_t>(begin),
                     ts_.begin() + static_cast<std::ptrdiff_t>(end));
    chunk.values_.assign(
        values_.begin() + static_cast<std::ptrdiff_t>(begin * width_),
        values_.begin() + static_cast<std::ptrdiff_t>(end * width_));
    out.push_back(std::move(chunk));
  }
  return out;
}

void TupleBatch::append(const TupleBatch& other) {
  if (other.empty()) return;
  if (empty() && width_ == kNoWidth) {
    stream_ = other.stream_;
    width_ = other.width_;
  } else if (stream_ != other.stream_ || width_ != other.width_) {
    throw std::invalid_argument{"TupleBatch: append of " + other.stream_ +
                                " (width " + std::to_string(other.width()) +
                                ") onto " + stream_ + " (width " +
                                std::to_string(width()) + ")"};
  }
  ts_.insert(ts_.end(), other.ts_.begin(), other.ts_.end());
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
}

TupleBatch TupleBatch::select(const std::vector<std::uint32_t>& rows) const {
  TupleBatch out{stream_};
  out.width_ = width_;
  out.ts_.reserve(rows.size());
  out.values_.reserve(rows.size() * width());
  for (const auto r : rows) {
    if (r >= size()) {
      throw std::out_of_range{"TupleBatch: selected row " + std::to_string(r) +
                              " out of range"};
    }
    out.ts_.push_back(ts_[r]);
    const auto first =
        values_.begin() + static_cast<std::ptrdiff_t>(r * width_);
    out.values_.insert(out.values_.end(), first,
                       first + static_cast<std::ptrdiff_t>(width_));
  }
  return out;
}

}  // namespace cosmos::runtime
