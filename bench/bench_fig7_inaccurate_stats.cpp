// Figure 7 — Adapting to inaccurate a-priori statistics.
//
// Queries start randomly placed (modelling a distribution computed from bad
// statistics); the adaptive redistribution then runs in rounds. Series:
//   NA-Inaccurate : no adaptation (flat),
//   A-Inaccurate  : adaptive from the random start,
//   A-Accurate    : adaptive from a proper initial distribution.
// Expected shape: A-Inaccurate converges toward A-Accurate on both the
// communication cost and the load standard deviation.
#include <cstdio>

#include "bench_common.h"

using namespace cosmos;
using namespace cosmos::bench;

int main() {
  const double scale = env_scale(0.25);
  const std::uint64_t seed = env_seed(42);
  const std::size_t nq =
      std::max<std::size_t>(500, static_cast<std::size_t>(30'000 * scale));
  const int rounds = 12;

  SimSetup setup{scale, 4, seed};
  const auto profiles = setup.workload->make_queries(nq);
  const auto pmap = to_map(profiles);

  Rng rrng{seed + 7};
  std::vector<std::pair<QueryId, NodeId>> random_start;
  for (const auto& p : profiles) {
    random_start.emplace_back(
        p.query, setup.deployment.processors[rrng.next_below(
                     setup.deployment.processors.size())]);
  }

  auto na = setup.make_distributor(seed + 1);   // non-adaptive, random start
  auto ai = setup.make_distributor(seed + 2);   // adaptive, random start
  auto aa = setup.make_distributor(seed + 3);   // adaptive, good start
  na.place_at(random_start, profiles);
  ai.place_at(random_start, profiles);
  aa.distribute(profiles);

  std::printf("# Fig 7: adaptation from inaccurate statistics "
              "(scale=%.2f seed=%llu queries=%zu)\n",
              scale, static_cast<unsigned long long>(seed), nq);
  std::printf("%6s %16s %16s %16s | %12s %12s %12s\n", "round",
              "NA-Inacc-cost", "A-Inacc-cost", "A-Acc-cost", "NA-stddev",
              "A-In-stddev", "A-Acc-stddev");
  for (int round = 0; round <= rounds; ++round) {
    const double c_na = setup.pairwise_total(na.placement(), pmap);
    const double c_ai = setup.pairwise_total(ai.placement(), pmap);
    const double c_aa = setup.pairwise_total(aa.placement(), pmap);
    const double s_na =
        sim::load_stddev(na.placement(), na.profiles(), setup.deployment);
    const double s_ai =
        sim::load_stddev(ai.placement(), ai.profiles(), setup.deployment);
    const double s_aa =
        sim::load_stddev(aa.placement(), aa.profiles(), setup.deployment);
    std::printf("%6d %16.4e %16.4e %16.4e | %12.4f %12.4f %12.4f\n", round,
                c_na, c_ai, c_aa, s_na, s_ai, s_aa);
    std::fflush(stdout);
    if (round < rounds) {
      ai.adapt();
      aa.adapt();
    }
  }
  return 0;
}
