// Wire codec: randomized encode/decode round-trips over every frame type
// plus the strict-decoder fault paths (bad magic, version mismatch,
// truncation, trailing bytes, oversize claims, implausible counts). The
// round-trip guarantee is what lets the federation ship TupleBatches and
// registrations between processes without ever drifting from the
// in-process representation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "cql/parser.h"
#include "sim/workload.h"
#include "wire/codec.h"
#include "wire/messages.h"

namespace cosmos::wire {
namespace {

bool tuple_eq(const stream::Tuple& a, const stream::Tuple& b) {
  if (a.ts != b.ts || a.values.size() != b.values.size()) return false;
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    if (!(a.values[i] == b.values[i])) return false;
  }
  return true;
}

bool tuples_eq(const std::vector<stream::Tuple>& a,
               const std::vector<stream::Tuple>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!tuple_eq(a[i], b[i])) return false;
  }
  return true;
}

stream::Value random_value(Rng& rng) {
  switch (rng.next_below(4)) {
    case 0:
      return stream::Value{static_cast<std::int64_t>(
          static_cast<std::int64_t>(rng.next_u64()) - (std::int64_t{1} << 40))};
    case 1:
      return stream::Value{0.001 * static_cast<double>(rng.next_below(1u << 20)) -
                           17.25};
    case 2: {
      // Strings with embedded NULs and non-ASCII bytes: the codec is
      // length-prefixed, so none of this may confuse it.
      std::string s;
      const std::size_t len = rng.next_below(24);
      for (std::size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.next_below(256)));
      }
      return stream::Value{std::move(s)};
    }
    default:
      return stream::Value{static_cast<std::int64_t>(rng.next_below(3))};
  }
}

stream::Tuple random_tuple(Rng& rng, std::size_t width,
                           stream::Timestamp ts) {
  stream::Tuple t;
  t.ts = ts;
  for (std::size_t i = 0; i < width; ++i) t.values.push_back(random_value(rng));
  return t;
}

runtime::TupleBatch random_batch(Rng& rng) {
  runtime::TupleBatch batch{"stream." + std::to_string(rng.next_below(1000))};
  const std::size_t rows = rng.next_below(40);
  const std::size_t width = 1 + rng.next_below(5);
  stream::Timestamp ts = -5'000 + static_cast<stream::Timestamp>(
                                      rng.next_below(10'000));
  for (std::size_t r = 0; r < rows; ++r) {
    batch.push_back(random_tuple(rng, width, ts));
    ts += static_cast<stream::Timestamp>(rng.next_below(1'000));
  }
  return batch;
}

TEST(WireCodec, BatchRoundTripFuzz) {
  Rng rng{20260808};
  for (int iter = 0; iter < 200; ++iter) {
    const auto batch = random_batch(rng);
    MatchRequestMsg msg;
    msg.job = rng.next_u64();
    msg.batch = batch;
    const Frame f = encode_match_request(msg);
    const auto back = decode_match_request(f);
    EXPECT_EQ(back.job, msg.job);
    ASSERT_EQ(back.batch, batch) << "iteration " << iter;
  }
}

TEST(WireCodec, ValueAndTupleRoundTripFuzz) {
  Rng rng{42};
  for (int iter = 0; iter < 500; ++iter) {
    ResultMsg msg;
    const std::size_t events = rng.next_below(5);
    for (std::size_t i = 0; i < events; ++i) {
      msg.events.push_back(
          {"cosmos.result." + std::to_string(rng.next_below(8)) + ".v1",
           random_tuple(rng, rng.next_below(4), static_cast<stream::Timestamp>(
                                                    rng.next_below(100'000)))});
    }
    const auto back = decode_result(encode_result(msg));
    ASSERT_EQ(back.events.size(), msg.events.size());
    for (std::size_t i = 0; i < msg.events.size(); ++i) {
      EXPECT_EQ(back.events[i].stream, msg.events[i].stream);
      EXPECT_TRUE(tuple_eq(back.events[i].tuple, msg.events[i].tuple));
    }
  }
}

TEST(WireCodec, ControlFramesRoundTrip) {
  HelloMsg hello;
  hello.worker_index = 3;
  hello.shards = 4;
  hello.send_delay_ms = 250;
  hello.stats_sample_every_ms = 60'000;
  hello.trace = 1;
  hello.peer_links = 1;
  const auto h = decode_hello(encode_hello(hello));
  EXPECT_EQ(h.protocol, kProtocolVersion);
  EXPECT_EQ(h.worker_index, 3u);
  EXPECT_EQ(h.shards, 4u);
  EXPECT_EQ(h.send_delay_ms, 250);
  EXPECT_EQ(h.stats_sample_every_ms, 60'000);
  EXPECT_EQ(h.trace, 1);
  EXPECT_EQ(h.peer_links, 1);

  const auto ack = decode_hello_ack(encode_hello_ack({"worker info"}));
  EXPECT_EQ(ack.info, "worker info");

  const auto wm = decode_watermark(
      encode_watermark({123'456'789, {{NodeId{2}, 9}, {NodeId{5}, 0}}}));
  EXPECT_EQ(wm.watermark, 123'456'789);
  ASSERT_EQ(wm.floors.size(), 2u);
  EXPECT_EQ(wm.floors[0].engine, NodeId{2});
  EXPECT_EQ(wm.floors[0].seq, 9u);
  EXPECT_EQ(wm.floors[1].engine, NodeId{5});
  EXPECT_EQ(wm.floors[1].seq, 0u);

  const auto fl = decode_flush(encode_flush({77, {{NodeId{1}, 4}}}));
  EXPECT_EQ(fl.seq, 77u);
  ASSERT_EQ(fl.floors.size(), 1u);
  EXPECT_EQ(fl.floors[0].engine, NodeId{1});
  EXPECT_EQ(fl.floors[0].seq, 4u);
  const auto fa = decode_flush_ack(encode_flush_ack({77}));
  EXPECT_EQ(fa.seq, 77u);

  const auto err = decode_error(encode_error({"engine exploded"}));
  EXPECT_EQ(err.message, "engine exploded");

  EXPECT_EQ(encode_bye().type, FrameType::kBye);
  EXPECT_EQ(encode_traffic_request().type, FrameType::kTrafficRequest);
}

TEST(WireCodec, PeerFramesRoundTrip) {
  PeerTableMsg table;
  table.endpoints = {"unix:/tmp/w0.sock", "tcp:127.0.0.1:4001", ""};
  const auto t = decode_peer_table(encode_peer_table(table));
  EXPECT_EQ(t.version, PeerTableMsg::kVersion);
  EXPECT_EQ(t.endpoints, table.endpoints);

  // Unsupported table versions are rejected, not half-read.
  PeerTableMsg bad = table;
  bad.version = 99;
  EXPECT_THROW((void)decode_peer_table(encode_peer_table(bad)), Error);

  RouteDecisionMsg route;
  route.job = 41;
  route.ingest_ns = 777ull;
  route.targets.push_back({NodeId{3}, 1, 12, {0, 2, 5}});
  route.targets.push_back({NodeId{9}, 0, 4, {}});
  const auto r = decode_route_decision(encode_route_decision(route));
  EXPECT_EQ(r.job, 41u);
  EXPECT_EQ(r.ingest_ns, 777u);
  ASSERT_EQ(r.targets.size(), 2u);
  EXPECT_EQ(r.targets[0].engine, NodeId{3});
  EXPECT_EQ(r.targets[0].worker, 1u);
  EXPECT_EQ(r.targets[0].seq, 12u);
  EXPECT_EQ(r.targets[0].rows, (std::vector<std::uint32_t>{0, 2, 5}));
  EXPECT_EQ(r.targets[1].engine, NodeId{9});
  EXPECT_TRUE(r.targets[1].rows.empty());

  const auto ph = decode_peer_hello(encode_peer_hello({kProtocolVersion, 2}));
  EXPECT_EQ(ph.protocol, kProtocolVersion);
  EXPECT_EQ(ph.worker_index, 2u);

  const auto pa = decode_peer_hello_ack(encode_peer_hello_ack({7}));
  EXPECT_EQ(pa.worker_index, 7u);
}

TEST(WireCodec, LivenessFramesRoundTrip) {
  // Protocol v3: liveness knobs ride on kHello so the daemon side arms the
  // same heartbeat/deadline schedule the driver does.
  static_assert(kProtocolVersion >= 3);
  HelloMsg hello;
  hello.heartbeat_every_ms = 250;
  hello.liveness_deadline_ms = 1'500;
  const auto h = decode_hello(encode_hello(hello));
  EXPECT_EQ(h.heartbeat_every_ms, 250);
  EXPECT_EQ(h.liveness_deadline_ms, 1'500);

  // probe=1 asks for an echo; probe=0 is the echo (absorbed silently).
  const auto probe = decode_heartbeat(encode_heartbeat({}));
  EXPECT_EQ(probe.probe, 1);
  const auto echo = decode_heartbeat(encode_heartbeat({0}));
  EXPECT_EQ(echo.probe, 0);

  const auto pd =
      decode_peer_down(encode_peer_down({2, 0, "liveness deadline"}));
  EXPECT_EQ(pd.from_worker, 2u);
  EXPECT_EQ(pd.to_worker, 0u);
  EXPECT_EQ(pd.reason, "liveness deadline");

  SeqGapMsg gap;
  gap.worker_index = 1;
  gap.missing = {{NodeId{4}, 17}, {NodeId{9}, 0}};
  const auto g = decode_seq_gap(encode_seq_gap(gap));
  EXPECT_EQ(g.worker_index, 1u);
  ASSERT_EQ(g.missing.size(), 2u);
  EXPECT_EQ(g.missing[0].engine, NodeId{4});
  EXPECT_EQ(g.missing[0].seq, 17u);
  EXPECT_EQ(g.missing[1].engine, NodeId{9});
  EXPECT_EQ(g.missing[1].seq, 0u);
}

TEST(WireCodec, RecoveryFieldsRoundTrip) {
  Rng rng{13};
  ExecuteMsg exec;
  exec.engine = NodeId{6};
  exec.batch = runtime::TupleBatch{"S"};
  exec.batch.push_back(random_tuple(rng, 2, 10));
  exec.seq = 987'654;
  const auto e = decode_execute(encode_execute(exec));
  EXPECT_EQ(e.seq, 987'654u);

  const auto keep = decode_migrate_out(encode_migrate_out({NodeId{4}, 1}));
  EXPECT_EQ(keep.engine, NodeId{4});
  EXPECT_EQ(keep.keep, 1);
  const auto full = decode_migrate_out(encode_migrate_out({NodeId{4}}));
  EXPECT_EQ(full.keep, 0);

  MigrateInMsg in;
  in.engine = NodeId{4};
  in.exec_seq = 55;
  const auto mi = decode_migrate_in(encode_migrate_in(in));
  EXPECT_EQ(mi.engine, NodeId{4});
  EXPECT_EQ(mi.exec_seq, 55u);

  TrafficReportMsg tr;
  tr.peer_frames = 12;
  tr.peer_bytes = 3'456;
  const auto tb = decode_traffic_report(encode_traffic_report(tr));
  EXPECT_EQ(tb.peer_frames, 12u);
  EXPECT_EQ(tb.peer_bytes, 3'456u);
}

TEST(WireCodec, TopologyAndRegistrationRoundTrip) {
  TopologyMsg topo;
  for (std::uint32_t i = 0; i < 4; ++i) {
    topo.participants.emplace_back(i);
    topo.members.emplace_back(i);
  }
  for (std::size_t i = 0; i < 16; ++i) {
    topo.dense.push_back(0.5 * static_cast<double>(i));
  }
  topo.use_index = false;
  const auto t = decode_topology(encode_topology(topo));
  EXPECT_EQ(t.participants, topo.participants);
  EXPECT_EQ(t.members, topo.members);
  EXPECT_EQ(t.dense, topo.dense);
  EXPECT_FALSE(t.use_index);

  RegisterStreamMsg reg;
  reg.stream = "station.3";
  reg.publisher = NodeId{7};
  reg.schema = sim::sensor_schema();
  const auto r = decode_register_stream(encode_register_stream(reg));
  EXPECT_EQ(r.stream, reg.stream);
  EXPECT_EQ(r.publisher, reg.publisher);
  EXPECT_EQ(r.schema.size(), reg.schema.size());
  for (std::size_t i = 0; i < reg.schema.size(); ++i) {
    EXPECT_EQ(r.schema.field(i).name, reg.schema.field(i).name);
  }
}

TEST(WireCodec, SubscriptionAndDeployRoundTrip) {
  const auto spec = cql::parse_query(
      "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp "
      "FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 "
      "WHERE S1.snowHeight >= S2.snowHeight AND S1.temperature < 2.5",
      QueryId{9}, NodeId{5});

  pubsub::Subscription sub;
  sub.id = SubscriptionId{42};
  sub.subscriber = NodeId{3};
  sub.streams = {"Station1"};
  sub.projection = {"snowHeight", "timestamp"};
  sub.filter = spec.where;
  const auto s = decode_subscribe(encode_subscribe({sub}));
  EXPECT_EQ(s.sub.id, sub.id);
  EXPECT_EQ(s.sub.subscriber, sub.subscriber);
  EXPECT_EQ(s.sub.streams, sub.streams);
  EXPECT_EQ(s.sub.projection, sub.projection);
  ASSERT_NE(s.sub.filter, nullptr);

  DeployUnitMsg deploy;
  deploy.unit_id = 11;
  deploy.host = NodeId{6};
  deploy.result_stream = "cosmos.result.11.v1";
  deploy.spec = spec;
  const auto d = decode_deploy_unit(encode_deploy_unit(deploy));
  EXPECT_EQ(d.unit_id, 11u);
  EXPECT_EQ(d.host, NodeId{6});
  EXPECT_EQ(d.result_stream, deploy.result_stream);
  EXPECT_EQ(d.spec.id, spec.id);
  EXPECT_EQ(d.spec.sources.size(), spec.sources.size());
  EXPECT_EQ(d.spec.select.size(), spec.select.size());
}

TEST(WireCodec, StateHandoffRoundTrip) {
  Rng rng{7};
  StateHandoffMsg msg;
  msg.engine = NodeId{4};
  UnitStateMsg unit;
  unit.unit_id = 2;
  stream::WindowJoinOp::State join;
  join.watermark = 98'765;
  for (int i = 0; i < 5; ++i) {
    join.left.push_back(random_tuple(rng, 3, 1'000 + i));
    join.right.push_back(random_tuple(rng, 2, 2'000 + i));
  }
  unit.joins.push_back(join);
  msg.units.push_back(std::move(unit));

  const Frame f = encode_state_handoff(msg);
  EXPECT_GT(f.payload.size(), 0u);
  const auto back = decode_state_handoff(f);
  EXPECT_EQ(back.engine, msg.engine);
  ASSERT_EQ(back.units.size(), 1u);
  EXPECT_EQ(back.units[0].unit_id, 2u);
  ASSERT_EQ(back.units[0].joins.size(), 1u);
  const auto& j = back.units[0].joins[0];
  EXPECT_EQ(j.watermark, join.watermark);
  EXPECT_TRUE(tuples_eq(j.left, join.left));
  EXPECT_TRUE(tuples_eq(j.right, join.right));
}

TEST(WireCodec, ExecuteAndResultCarryIngestStamps) {
  Rng rng{11};
  ExecuteMsg exec;
  exec.engine = NodeId{6};
  exec.batch = runtime::TupleBatch{"S"};
  exec.batch.push_back(random_tuple(rng, 2, 10));
  exec.ingest_ns = 123'456'789'012ull;
  const auto exec_back = decode_execute(encode_execute(exec));
  EXPECT_EQ(exec_back.engine, exec.engine);
  EXPECT_EQ(exec_back.ingest_ns, exec.ingest_ns);

  ResultMsg result;
  result.events.push_back({"r1", random_tuple(rng, 1, 20), 42ull});
  result.events.push_back({"r2", random_tuple(rng, 1, 21), 0ull});
  const auto result_back = decode_result(encode_result(result));
  ASSERT_EQ(result_back.events.size(), 2u);
  EXPECT_EQ(result_back.events[0].stream, "r1");
  EXPECT_EQ(result_back.events[0].ingest_ns, 42u);
  EXPECT_EQ(result_back.events[1].ingest_ns, 0u);
}

TEST(WireCodec, StatsSampleRoundTrip) {
  StatsSampleMsg msg;
  msg.worker_index = 2;
  msg.now_ms = 3'600'000;
  msg.metrics.counters = {{"shard.tuples", 12'345}, {"shard.tasks", 99}};
  std::sort(msg.metrics.counters.begin(), msg.metrics.counters.end());
  msg.metrics.gauges = {{"shard.max_queue_depth", 4.0}};
  obs::HistogramSnapshot h;
  for (std::uint64_t v = 1; v <= 50; ++v) h.record(v * 100);
  msg.metrics.histograms.emplace_back("lat", h);
  obs::CollectedSpan span;
  span.name = "task";
  span.cat = "shard";
  span.start_ns = 1'000;
  span.dur_ns = 500;
  span.arg = 7;
  span.tid = 3;
  msg.spans.push_back(span);
  obs::CollectedSpan inst;
  inst.name = "migration";
  inst.cat = "adapt";
  inst.start_ns = 2'000;
  inst.instant = true;
  msg.spans.push_back(inst);

  const auto back = decode_stats_sample(encode_stats_sample(msg));
  EXPECT_EQ(back.version, StatsSampleMsg::kVersion);
  EXPECT_EQ(back.worker_index, 2u);
  EXPECT_EQ(back.now_ms, 3'600'000);
  ASSERT_NE(back.metrics.counter("shard.tuples"), nullptr);
  EXPECT_EQ(*back.metrics.counter("shard.tuples"), 12'345u);
  ASSERT_NE(back.metrics.gauge("shard.max_queue_depth"), nullptr);
  const obs::HistogramSnapshot* hb = back.metrics.histogram("lat");
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(hb->count, h.count);
  EXPECT_EQ(hb->sum, h.sum);
  EXPECT_EQ(hb->percentile(95.0), h.percentile(95.0));
  ASSERT_EQ(back.spans.size(), 2u);
  EXPECT_EQ(back.spans[0].name, "task");
  EXPECT_EQ(back.spans[0].dur_ns, 500u);
  EXPECT_EQ(back.spans[0].tid, 3u);
  EXPECT_FALSE(back.spans[0].instant);
  EXPECT_TRUE(back.spans[1].instant);

  // Unsupported payload versions are rejected, not half-read.
  StatsSampleMsg bad = msg;
  bad.version = 99;
  EXPECT_THROW((void)decode_stats_sample(encode_stats_sample(bad)), Error);
}

// --- fault paths -----------------------------------------------------------

std::vector<std::uint8_t> encoded(const Frame& f) { return encode_frame(f); }

TEST(WireCodec, RejectsBadMagic) {
  auto buf = encoded(encode_watermark({1}));
  buf[0] ^= 0xFF;
  std::uint8_t header[kFrameHeaderBytes];
  std::copy(buf.begin(), buf.begin() + kFrameHeaderBytes, header);
  FrameType type{};
  EXPECT_THROW((void)decode_frame_header(header, type), Error);
}

TEST(WireCodec, RejectsVersionMismatch) {
  auto buf = encoded(encode_watermark({1}));
  buf[4] = 0x7F;  // version lives after the u32 magic
  buf[5] = 0x7F;
  std::uint8_t header[kFrameHeaderBytes];
  std::copy(buf.begin(), buf.begin() + kFrameHeaderBytes, header);
  FrameType type{};
  EXPECT_THROW((void)decode_frame_header(header, type), Error);
}

TEST(WireCodec, RejectsOversizePayloadClaim) {
  auto buf = encoded(encode_watermark({1}));
  // Payload length is the trailing u32 of the header (little-endian).
  buf[8] = 0xFF;
  buf[9] = 0xFF;
  buf[10] = 0xFF;
  buf[11] = 0xFF;
  std::uint8_t header[kFrameHeaderBytes];
  std::copy(buf.begin(), buf.begin() + kFrameHeaderBytes, header);
  FrameType type{};
  EXPECT_THROW((void)decode_frame_header(header, type), Error);
}

TEST(WireCodec, RejectsTruncatedPayload) {
  Rng rng{3};
  MatchRequestMsg msg;
  msg.job = 5;
  msg.batch = random_batch(rng);
  Frame f = encode_match_request(msg);
  ASSERT_GT(f.payload.size(), 1u);
  f.payload.resize(f.payload.size() / 2);
  EXPECT_THROW((void)decode_match_request(f), Error);
}

TEST(WireCodec, RejectsTrailingBytes) {
  Frame f = encode_watermark({1});
  f.payload.push_back(0);
  EXPECT_THROW((void)decode_watermark(f), Error);
}

TEST(WireCodec, RejectsWrongFrameType) {
  const Frame f = encode_watermark({1});
  EXPECT_THROW((void)decode_flush(f), Error);
}

TEST(WireCodec, RejectsImplausibleElementCount) {
  // A result frame claiming 2^31 events in a 12-byte payload must fail the
  // count check, not attempt a giant allocation.
  Frame f;
  f.type = FrameType::kResult;
  Writer w;
  w.u32(0x8000'0000u);
  f.payload = w.take();
  EXPECT_THROW((void)decode_result(f), Error);
}

TEST(WireCodec, RejectsUnknownPredicateTag) {
  pubsub::Subscription sub;
  sub.id = SubscriptionId{1};
  sub.subscriber = NodeId{0};
  sub.streams = {"s"};
  sub.filter = stream::Predicate::always_true();
  Frame f = encode_subscribe({sub});
  // The predicate tag is the last structural byte region; corrupt every
  // byte position in turn and require decode to either succeed (the byte
  // was a value payload) or throw Error — never crash or mis-parse into a
  // different frame type.
  for (std::size_t i = 0; i < f.payload.size(); ++i) {
    Frame mutated = f;
    mutated.payload[i] ^= 0xA5;
    try {
      (void)decode_subscribe(mutated);
    } catch (const Error&) {
      // expected for structural bytes
    }
  }
}

TEST(WireCodec, SerializedStateBytesMatchesEncoding) {
  Rng rng{11};
  std::vector<stream::WindowJoinOp::State> joins(2);
  joins[0].watermark = 10;
  joins[0].left.push_back(random_tuple(rng, 2, 5));
  joins[1].right.push_back(random_tuple(rng, 4, 9));
  Writer w;
  encode_join_state(w, joins);
  EXPECT_EQ(serialized_state_bytes(joins), w.size());
}

}  // namespace
}  // namespace cosmos::wire
