// Figure 10 — Perturbation of stream rates.
//
// At each event, the rates of 800 random substreams are increased ("I") or
// decreased ("D") several-fold, creating load imbalance. Series:
//   No-Adaptive : keep the initial distribution,
//   Adaptive    : one adaptation round per event,
//   Remapping   : centralized remap of the global graph (upper bound).
// Expected shape: Adaptive tracks Remapping's cost and load balance while
// migrating far fewer queries (the paper reports ~7x fewer).
#include <cstdio>

#include "bench_common.h"

using namespace cosmos;
using namespace cosmos::bench;

int main() {
  const double scale = env_scale(0.25);
  const std::uint64_t seed = env_seed(42);
  const std::size_t nq =
      std::max<std::size_t>(500, static_cast<std::size_t>(30'000 * scale));
  const std::size_t perturbed =
      std::max<std::size_t>(40, static_cast<std::size_t>(800 * scale));

  SimSetup setup{scale, 4, seed};
  auto profiles = setup.workload->make_queries(nq);

  auto no_adapt = setup.make_distributor(seed + 1);
  auto adaptive = setup.make_distributor(seed + 2);
  no_adapt.distribute(profiles);
  adaptive.distribute(profiles);
  auto remap_placement = adaptive.placement();

  const char pattern[] = {'I', 'D', 'I', 'I', 'I', 'I', 'I', 'D', 'D', 'I'};
  std::size_t adaptive_migrations = 0;
  std::size_t remap_migrations = 0;
  Rng crng{seed + 5};

  std::printf("# Fig 10: stream rate perturbation (scale=%.2f seed=%llu "
              "queries=%zu perturbed=%zu/event)\n",
              scale, static_cast<unsigned long long>(seed), nq, perturbed);
  std::printf("%6s %5s %13s %13s %13s | %11s %11s %11s\n", "event", "type",
              "no-adaptive", "adaptive", "remapping", "na-stddev",
              "ad-stddev", "rm-stddev");
  for (std::size_t e = 0; e < sizeof(pattern); ++e) {
    setup.workload->perturb_rates(perturbed, pattern[e] == 'I' ? 4.0 : 0.25);
    setup.workload->refresh_profiles(profiles);
    const auto pmap = to_map(profiles);

    no_adapt.refresh_statistics();
    adaptive.refresh_statistics();
    const auto report = adaptive.adapt();
    adaptive_migrations += report.migrated_queries;

    // Centralized remap baseline.
    const auto before = remap_placement;
    const auto central = sim::centralized_placement(
        profiles, setup.deployment, setup.workload->space(), {}, {}, true,
        crng);
    remap_placement = central.placement;
    for (const auto& [q, node] : remap_placement) {
      const auto it = before.find(q);
      if (it != before.end() && it->second != node) ++remap_migrations;
    }

    std::printf(
        "%6zu %5c %13.4e %13.4e %13.4e | %11.4f %11.4f %11.4f\n", e,
        pattern[e], setup.pairwise_total(no_adapt.placement(), pmap),
        setup.pairwise_total(adaptive.placement(), pmap),
        setup.pairwise_total(remap_placement, pmap),
        sim::load_stddev(no_adapt.placement(), pmap, setup.deployment),
        sim::load_stddev(adaptive.placement(), pmap, setup.deployment),
        sim::load_stddev(remap_placement, pmap, setup.deployment));
    std::fflush(stdout);
  }
  std::printf("# migrations: adaptive=%zu remapping=%zu (ratio %.2fx)\n",
              adaptive_migrations, remap_migrations,
              adaptive_migrations > 0
                  ? static_cast<double>(remap_migrations) /
                        static_cast<double>(adaptive_migrations)
                  : 0.0);
  return 0;
}
