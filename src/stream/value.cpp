#include "stream/value.h"

#include <stdexcept>

namespace cosmos::stream {

ValueType Value::type() const noexcept {
  switch (v_.index()) {
    case 0: return ValueType::kInt;
    case 1: return ValueType::kDouble;
    default: return ValueType::kString;
  }
}

double Value::as_double() const {
  if (const auto* i = std::get_if<std::int64_t>(&v_)) {
    return static_cast<double>(*i);
  }
  if (const auto* d = std::get_if<double>(&v_)) return *d;
  throw std::logic_error{"Value: string has no numeric view"};
}

std::int64_t Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return *i;
  if (const auto* d = std::get_if<double>(&v_)) {
    return static_cast<std::int64_t>(*d);
  }
  throw std::logic_error{"Value: string has no numeric view"};
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&v_)) return *s;
  throw std::logic_error{"Value: not a string"};
}

int Value::compare(const Value& other) const {
  if (type() == ValueType::kString || other.type() == ValueType::kString) {
    if (type() != ValueType::kString || other.type() != ValueType::kString) {
      throw std::logic_error{"Value: string vs numeric comparison"};
    }
    const auto& a = as_string();
    const auto& b = other.as_string();
    return a < b ? -1 : (a == b ? 0 : 1);
  }
  const double a = as_double();
  const double b = other.as_double();
  return a < b ? -1 : (a == b ? 0 : 1);
}

std::string Value::to_string() const {
  switch (type()) {
    case ValueType::kInt: return std::to_string(as_int());
    case ValueType::kDouble: return std::to_string(as_double());
    default: return as_string();
  }
}

}  // namespace cosmos::stream
