// Query graph coarsening — Algorithm 1 of the paper.
//
// Repeatedly collapses matched vertex pairs, preferring the heaviest
// incident edge (vertices likely to map to the same network vertex), until
// the graph has at most `vmax` vertices. Constraints from the paper:
//   * two n-vertices collapse only when they belong to the same *known*
//     child cluster (they must map to the same network vertex);
//   * a q-vertex may collapse into an n-vertex (pinning the group to that
//     node's cluster) — but only when the n-vertex is covered by a child
//     cluster of this coordinator; collapsing into a remote anchor would pin
//     load onto a vertex that cannot accept it.
#pragma once

#include <vector>

#include "common/rng.h"
#include "graph/edge_model.h"
#include "graph/query_graph.h"

namespace cosmos::graph {

struct CoarsenResult {
  QueryGraph graph;
  /// members[c] = fine vertex indices merged into coarse vertex c.
  std::vector<std::vector<QueryGraph::VertexIndex>> members;
  /// coarse_of[f] = coarse vertex holding fine vertex f.
  std::vector<QueryGraph::VertexIndex> coarse_of;
  std::size_t rounds = 0;
  /// Pairs merged without a connecting edge (fallback when matching stalls).
  std::size_t forced_merges = 0;
};

/// `model` may be null: coarse edge weights then fall back to summing fine
/// edge weights instead of bit-vector re-estimation.
[[nodiscard]] CoarsenResult coarsen(const QueryGraph& fine, std::size_t vmax,
                                    const EdgeModel* model, Rng& rng);

}  // namespace cosmos::graph
