// End-to-end plan tests, including the paper's Fig 4 result-sharing claim:
// running the merged query Q5 and re-filtering its result stream yields
// exactly what running Q3/Q4 directly would.
#include "query/plan.h"

#include <gtest/gtest.h>

#include "cql/parser.h"
#include "query/containment.h"
#include "runtime/tuple_batch.h"
#include "sim/sensor_trace.h"
#include "stream/engine.h"

namespace cosmos::query {
namespace {

using stream::Engine;
using stream::Tuple;
using stream::Value;

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_.register_stream("Station1", sim::sensor_schema());
    engine_.register_stream("Station2", sim::sensor_schema());
  }

  void feed_trace(std::size_t readings, std::uint64_t seed) {
    sim::SensorTraceParams p;
    p.stations = 2;
    p.readings_per_station = readings;
    p.period_ms = 60'000;  // one reading per minute
    Rng rng{seed};
    for (const auto& r : sim::make_sensor_trace(p, rng)) {
      engine_.publish(sim::station_stream_name(r.station), r.tuple);
    }
  }

  Engine engine_;
};

TEST_F(PlanTest, SingleStreamFilterAndProject) {
  const auto q = cql::parse_query(
      "SELECT snowHeight FROM Station1 [Now] S1 WHERE S1.snowHeight >= 20");
  CompiledQuery cq{engine_, q, "r1"};
  std::vector<Tuple> out;
  engine_.attach("r1", [&](const Tuple& t) { out.push_back(t); });
  feed_trace(50, 42);
  ASSERT_FALSE(out.empty());
  EXPECT_LT(out.size(), 50u);  // filter is selective
  for (const auto& t : out) {
    ASSERT_EQ(t.values.size(), 1u);
    EXPECT_GE(t.at(0).as_double(), 20.0);
  }
}

TEST_F(PlanTest, JoinPlanMatchesSemanticReference) {
  // Q3 from the paper. Reference: brute-force evaluation over the trace.
  const auto q = cql::parse_query(
      "SELECT S2.* "
      "FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 "
      "WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10");
  CompiledQuery cq{engine_, q, "r3"};
  std::size_t plan_results = 0;
  engine_.attach("r3", [&](const Tuple&) { ++plan_results; });

  sim::SensorTraceParams p;
  p.stations = 2;
  p.readings_per_station = 60;
  p.period_ms = 60'000;
  Rng rng{7};
  const auto trace = sim::make_sensor_trace(p, rng);

  // Reference count: for each S2 tuple, S1 tuples in the previous 30 min
  // (including now) with greater snowHeight >= 10.
  std::size_t expected = 0;
  for (const auto& r2 : trace) {
    if (r2.station != 1) continue;
    for (const auto& r1 : trace) {
      if (r1.station != 0) continue;
      const auto dt = r2.tuple.ts - r1.tuple.ts;
      if (dt < 0 || dt > 30 * 60'000) continue;
      const double h1 = r1.tuple.at(0).as_double();
      const double h2 = r2.tuple.at(0).as_double();
      if (h1 > h2 && h1 >= 10.0) ++expected;
    }
  }
  for (const auto& r : trace) {
    engine_.publish(sim::station_stream_name(r.station), r.tuple);
  }
  EXPECT_EQ(plan_results, expected);
  EXPECT_GT(plan_results, 0u);
}

TEST_F(PlanTest, ResultSchemaHasPrefixedNames) {
  const auto q = cql::parse_query(
      "SELECT S2.*, S1.snowHeight "
      "FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2 "
      "WHERE S1.snowHeight > S2.snowHeight");
  CompiledQuery cq{engine_, q, "r"};
  EXPECT_TRUE(cq.result_schema().index_of("S2.snowHeight").has_value());
  EXPECT_TRUE(cq.result_schema().index_of("S1.snowHeight").has_value());
  EXPECT_FALSE(cq.result_schema().index_of("S1.temperature").has_value());
}

TEST_F(PlanTest, DestructorDetachesTaps) {
  const auto q = cql::parse_query("SELECT * FROM Station1 [Now] S1");
  {
    CompiledQuery cq{engine_, q, "tmp"};
    feed_trace(3, 1);
    EXPECT_GT(engine_.published_count("tmp"), 0u);
  }
  const auto before = engine_.published_count("tmp");
  // New tuples no longer flow into "tmp" after cq is destroyed.
  stream::Tuple t;
  t.ts = 100'000'000;
  t.values = {Value{1.0}, Value{1.0}, Value{std::int64_t{0}},
              Value{std::int64_t{100'000'000}}};
  engine_.publish("Station1", t);
  EXPECT_EQ(engine_.published_count("tmp"), before);
}

TEST_F(PlanTest, UnknownSelectColumnThrows) {
  auto q = cql::parse_query("SELECT nope FROM Station1 [Now] S1");
  EXPECT_THROW(CompiledQuery(engine_, q, "x"), std::invalid_argument);
}

// --- The Fig 4 / Section 2.1 result-sharing equivalence ---

class ResultSharingTest : public PlanTest {
 protected:
  static QuerySpec q3() {
    return cql::parse_query(
        "SELECT S2.* "
        "FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 "
        "WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10",
        QueryId{3});
  }
  static QuerySpec q4() {
    return cql::parse_query(
        "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp "
        "FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2 "
        "WHERE S1.snowHeight > S2.snowHeight",
        QueryId{4});
  }

  static std::vector<std::vector<std::string>> render(
      const std::vector<Tuple>& ts) {
    std::vector<std::vector<std::string>> out;
    for (const auto& t : ts) {
      std::vector<std::string> row;
      for (const auto& v : t.values) row.push_back(v.to_string());
      out.push_back(std::move(row));
    }
    return out;
  }
};

TEST_F(ResultSharingTest, MergedPlusSplitEqualsDirect) {
  const auto merged = merge_queries(q3(), q4(), QueryId{5});
  ASSERT_TRUE(merged.has_value());

  // Direct execution of Q3 and Q4.
  CompiledQuery direct3{engine_, q3(), "direct3"};
  CompiledQuery direct4{engine_, q4(), "direct4"};
  std::vector<Tuple> out3, out4;
  engine_.attach("direct3", [&](const Tuple& t) { out3.push_back(t); });
  engine_.attach("direct4", [&](const Tuple& t) { out4.push_back(t); });

  // Merged execution (Q5) with per-query split filters at the "consumer".
  CompiledQuery q5{engine_, merged->merged, "s5"};
  std::vector<Tuple> split3, split4;
  const auto split_a_pred = make_split_predicate(merged->split_a);
  const auto split_b_pred = make_split_predicate(merged->split_b);
  const auto keep_a =
      split_projection_indices(merged->split_a, q5.result_schema());
  const auto keep_b =
      split_projection_indices(merged->split_b, q5.result_schema());
  const auto& merged_schema = q5.result_schema();
  engine_.attach("s5", [&](const Tuple& t) {
    const std::vector<stream::Binding> env{{"", &merged_schema, &t}};
    if (split_a_pred->eval(env)) {
      Tuple proj;
      proj.ts = t.ts;
      for (const auto i : keep_a) proj.values.push_back(t.at(i));
      split3.push_back(std::move(proj));
    }
    if (split_b_pred->eval(env)) {
      Tuple proj;
      proj.ts = t.ts;
      for (const auto i : keep_b) proj.values.push_back(t.at(i));
      split4.push_back(std::move(proj));
    }
  });

  feed_trace(80, 99);

  ASSERT_FALSE(out3.empty());
  ASSERT_FALSE(out4.empty());
  EXPECT_EQ(render(split3), render(out3));
  EXPECT_EQ(render(split4), render(out4));
  // And the merged stream is genuinely shared: strictly fewer tuples than
  // the two result streams combined would carry on the shared path.
  EXPECT_LE(engine_.published_count("s5"),
            engine_.published_count("direct3") +
                engine_.published_count("direct4"));
}

TEST_F(PlanTest, BatchPathMatchesScalarOnSchemaWithoutTimestampColumn) {
  // Streams whose raw schema lacks a "timestamp" column exercise the
  // virtual-ts slots end to end: the batch chain filters/joins/projects
  // raw batches and reads the plan-appended "<alias>.timestamp" column
  // from the row timestamps, while the scalar chain lifts physically.
  const stream::Schema bare{{{"v", stream::ValueType::kInt},
                             {"w", stream::ValueType::kDouble}}};
  engine_.register_stream("BareA", bare);
  engine_.register_stream("BareB", bare);
  const auto q = cql::parse_query(
      "SELECT A.v, A.timestamp, B.v, B.timestamp "
      "FROM BareA [Range 5 Minutes] A, BareB [Range 5 Minutes] B "
      "WHERE A.v = B.v AND A.w > 1.5");

  Engine scalar_engine;
  scalar_engine.register_stream("BareA", bare);
  scalar_engine.register_stream("BareB", bare);
  CompiledQuery batch_q{engine_, q, "bare_r"};
  CompiledQuery scalar_q{scalar_engine, q, "bare_r"};

  const auto render = [](const std::vector<Tuple>& ts) {
    std::string s;
    for (const auto& t : ts) {
      s += std::to_string(t.ts);
      for (const auto& v : t.values) s += "|" + v.to_string();
      s += "\n";
    }
    return s;
  };
  std::vector<Tuple> batch_out;
  std::vector<Tuple> scalar_out;
  engine_.attach("bare_r", [&](const Tuple& t) { batch_out.push_back(t); });
  scalar_engine.attach("bare_r",
                       [&](const Tuple& t) { scalar_out.push_back(t); });

  // Same trace through both: per-stream batches via publish_batch vs
  // per-tuple publish, interleaved in global timestamp order.
  Rng rng{7};
  std::vector<std::pair<std::string, Tuple>> events;
  for (int i = 0; i < 120; ++i) {
    events.emplace_back(
        (i / 4) % 2 == 0 ? "BareA" : "BareB",  // 4-tuple same-stream runs
        Tuple{static_cast<stream::Timestamp>(i * 30'000),
              {Value{static_cast<std::int64_t>(rng.next_below(5))},
               Value{rng.next_double(0.0, 3.0)}}});
  }
  runtime::TupleBatch open{""};
  const auto flush = [&](const std::string& stream) {
    if (!open.empty()) engine_.publish_batch(stream, open);
  };
  std::string open_stream;
  for (const auto& [stream, tuple] : events) {
    scalar_engine.publish(stream, tuple);
    if (stream != open_stream) {
      flush(open_stream);
      open_stream = stream;
      open = runtime::TupleBatch{stream};
    }
    open.push_back(tuple);
  }
  flush(open_stream);

  ASSERT_FALSE(scalar_out.empty());
  EXPECT_EQ(render(batch_out), render(scalar_out));
  EXPECT_EQ(batch_q.results_emitted(), scalar_q.results_emitted());
  EXPECT_EQ(batch_q.state_tuples(), scalar_q.state_tuples());
}

}  // namespace
}  // namespace cosmos::query
