// A distributed content-based publish/subscribe substrate (Siena-style,
// Section 1.2), simulated in-process over an overlay tree.
//
// Brokers sit on every participant node; the overlay is the latency-minimal
// spanning tree of the participants. Publishers advertise streams; the
// advertisement floods the tree so every broker knows which neighbor leads
// to each stream's source. Subscriptions propagate from the subscriber
// toward the advertisers, installing per-link routing state; covered
// subscriptions are absorbed (not forwarded). Messages then flow along the
// reverse subscription paths: one copy per link regardless of how many
// downstream subscriptions want it, with attributes pruned to the union of
// downstream projections (early projection + filtering).
//
// Since PR 3, BrokerNetwork is a thin facade over per-stream
// pubsub::BrokerPartition objects (broker_partition.h): each advertised
// stream's subscription index, matching and traffic accounting live in its
// own lock-free partition, so matching can run inside the runtime shard
// that owns the stream's publishing engine while the facade merely builds
// partitions, applies subscription updates, and merges their traffic
// stats. All link traffic is accounted as bytes and as byte*ms (the
// weighted communication cost the prototype study reports), per directed
// link and in total.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/latency_matrix.h"
#include "pubsub/broker_partition.h"
#include "pubsub/subscription.h"
#include "runtime/tuple_batch.h"

namespace cosmos::pubsub {

class BrokerNetwork {
 public:
  using DeliveryCallback = BrokerPartition::DeliveryCallback;

  struct Options {
    /// Decompose subscription filters into each partition's
    /// attribute-predicate index (sublinear matching). Off = linear scan
    /// over every subscription per row — the differential oracle
    /// bench_match_scale and the pubsub churn test compare against.
    bool use_index = true;
  };

  /// Builds the overlay spanning tree over `participants` using latencies
  /// from `lat` (all participants must be members of `lat`).
  BrokerNetwork(std::vector<NodeId> participants,
                const net::LatencyMatrix& lat, Options options);
  BrokerNetwork(std::vector<NodeId> participants,
                const net::LatencyMatrix& lat)
      : BrokerNetwork(std::move(participants), lat, Options{}) {}

  // Partitions hold pointers into overlay_ and subscriptions_ (and shards
  // hold partition pointers during run()): the network must stay at one
  // address for its whole life.
  BrokerNetwork(const BrokerNetwork&) = delete;
  BrokerNetwork& operator=(const BrokerNetwork&) = delete;

  /// Declares that `publisher` emits `stream` with the given schema;
  /// creates the stream's partition (indexing any already-installed
  /// subscriptions interested in it).
  void advertise(const std::string& stream, NodeId publisher,
                 stream::Schema schema);

  /// Installs a subscription at its subscriber node; returns its id.
  SubscriptionId subscribe(Subscription sub);
  /// Installs a subscription under the id it already carries (federation
  /// nodes replicate driver-assigned subscriptions, and match responses
  /// reference those ids on the wire). Throws std::invalid_argument if the
  /// id is invalid or taken; future subscribe() ids are bumped past it.
  void subscribe_as(Subscription sub);
  void unsubscribe(SubscriptionId id);

  /// The installed subscription with this id, or nullptr.
  [[nodiscard]] const Subscription* subscription(
      SubscriptionId id) const noexcept;

  /// Publishes a tuple from the stream's advertised publisher. Matching
  /// subscriptions receive it via `callback`; link traffic is accounted.
  void publish(const std::string& stream, const stream::Tuple& tuple,
               const DeliveryCallback& callback);

  using BatchDeliveryCallback = std::function<void(const BatchDelivery&)>;

  /// Batched forwarding: publishes every row of `batch` with per-tuple
  /// matching and link accounting identical to N publish() calls, but one
  /// delivery per matching subscription carrying all of its rows at once
  /// (callbacks fire after the whole batch is routed, in first-match
  /// order). This is what lets the runtime hand whole batches to shard
  /// engines instead of crossing the queue per tuple. Rows must be
  /// timestamp-ordered (std::invalid_argument otherwise).
  void publish_batch(const std::string& stream,
                     const runtime::TupleBatch& batch,
                     const BatchDeliveryCallback& callback);

  /// Partition owning `stream`, or nullptr if unadvertised. The runtime
  /// path uses this to run match_batch() inside shards; a partition must be
  /// driven by at most one thread at a time (see broker_partition.h).
  [[nodiscard]] BrokerPartition* partition(const std::string& stream) noexcept;
  /// All partitions, ordered by stream name (deterministic).
  [[nodiscard]] std::vector<BrokerPartition*> partitions();

  /// Traffic merged across every partition. Only meaningful while no other
  /// thread is driving a partition (quiescent points: outside run(), or on
  /// the driver after a drain).
  [[nodiscard]] TrafficStats traffic() const;
  void reset_traffic() noexcept;

  [[nodiscard]] const stream::Schema& schema(const std::string& stream) const;

  /// Participants in construction order (what a federation driver ships as
  /// topology so remote brokers rebuild the identical overlay tree).
  [[nodiscard]] const std::vector<NodeId>& participants() const noexcept {
    return overlay_.participants;
  }
  /// The latency matrix this network was built over.
  [[nodiscard]] const net::LatencyMatrix& latency_matrix() const noexcept {
    return *overlay_.lat;
  }

  /// Overlay neighbors of a node (for tests).
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId n) const;

 private:
  void install(Subscription sub);

  Overlay overlay_;
  /// stream name -> partition; std::map keeps partitions() deterministic,
  /// unique_ptr keeps partition addresses stable across inserts (shards
  /// hold raw pointers while the facade may advertise more streams).
  std::map<std::string, std::unique_ptr<BrokerPartition>> partitions_;
  std::unordered_map<SubscriptionId, Subscription> subscriptions_;
  /// stream name -> interested subscriptions (also for streams that are
  /// not advertised yet; advertise() replays these into the partition).
  std::unordered_map<std::string, std::vector<SubscriptionId>> by_stream_;
  SubscriptionId::value_type next_sub_id_ = 0;
  Options options_;
};

}  // namespace cosmos::pubsub
