// Journal corruption matrix: every class of on-disk damage must surface as
// a typed journal::Error or a clean rollback to the last valid checkpoint —
// never a crash, a hang, or silent divergence. The cases mirror
// docs/durability.md: torn tail (truncate at the last whole record),
// flipped CRC byte, truncated header, stale format version, wrong magic,
// and a commitless / empty directory.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "journal/journal.h"
#include "wire/messages.h"

namespace cosmos::journal {
namespace {

class JournalCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/cosmos_journal_corrupt_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// The single segment path of a fresh one-segment journal.
  [[nodiscard]] std::string seg_path(std::uint64_t seq = 1) const {
    char name[32];
    std::snprintf(name, sizeof(name), "seg-%08llu.cjl",
                  static_cast<unsigned long long>(seq));
    return dir_ + "/" + name;
  }

  static std::vector<std::uint8_t> slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  static void dump(const std::string& path,
                   const std::vector<std::uint8_t>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
};

runtime::TupleBatch one_row(const std::string& stream, stream::Timestamp ts) {
  runtime::TupleBatch batch{stream};
  stream::Tuple t;
  t.ts = ts;
  t.values.push_back(stream::Value{std::int64_t{7}});
  batch.push_back(std::move(t));
  return batch;
}

wire::ExecuteMsg exec_msg(std::uint64_t seq) {
  wire::ExecuteMsg exec;
  exec.engine = NodeId{3};
  exec.batch = one_row("S3", 10 + static_cast<stream::Timestamp>(seq));
  exec.seq = seq;
  return exec;
}

/// One committed segment with a two-chunk tail; returns its byte size so
/// tests can damage precise regions.
void write_valid_journal(const std::string& dir) {
  Meta meta;
  meta.batch_size = 16;
  meta.endpoints = {"unix:/tmp/w0.sock"};
  auto w = Writer::create(dir, meta, Writer::Options{});
  w->commit_checkpoint({});
  w->execute(exec_msg(0));
  w->chunk_routed({0, 5, 60'000});
  w->execute(exec_msg(1));
  w->chunk_routed({1, 9, 120'000});
}

ErrorCode recover_error(const std::string& dir) {
  try {
    (void)recover(dir);
  } catch (const Error& e) {
    return e.code();
  }
  ADD_FAILURE() << "recover() unexpectedly succeeded";
  return ErrorCode::kIo;
}

TEST_F(JournalCorruptionTest, TornTailIsTruncatedAtLastWholeRecord) {
  write_valid_journal(dir_);
  auto bytes = slurp(seg_path());
  // Chop mid-record: recovery keeps everything before the tear.
  bytes.resize(bytes.size() - 3);
  dump(seg_path(), bytes);

  const auto rec = recover(dir_);
  EXPECT_TRUE(rec.torn_tail);
  EXPECT_GE(rec.records_dropped, 1u);
  // The tear ate chunk 1's marker, so its execute is discarded and the
  // resume cut stays at chunk 0's.
  ASSERT_EQ(rec.executes.size(), 1u);
  EXPECT_EQ(rec.resume_events, 5u);
  EXPECT_EQ(rec.resume_chunk, 1u);
}

TEST_F(JournalCorruptionTest, FlippedByteFailsCrcAndDropsTheTail) {
  write_valid_journal(dir_);
  auto bytes = slurp(seg_path());
  // Flip one byte well into the post-commit tail: the containing record
  // fails its CRC and the scan stops there, keeping the valid prefix.
  bytes[bytes.size() - 10] ^= 0x01;
  dump(seg_path(), bytes);

  const auto rec = recover(dir_);
  EXPECT_GE(rec.records_dropped, 1u);
  EXPECT_LE(rec.resume_events, 5u);  // chunk 1's marker did not survive
}

TEST_F(JournalCorruptionTest, FlippedByteBeforeCommitRollsBackASegment) {
  write_valid_journal(dir_);
  // Roll a second segment, then corrupt its preamble (before its commit):
  // recovery must fall back to segment 1's cut and report the rollback.
  {
    Meta meta;
    meta.batch_size = 16;
    meta.endpoints = {"unix:/tmp/w0.sock"};
    auto w = Writer::continue_at(dir_, 2, meta, Writer::Options{});
    CheckpointCommit c;
    c.checkpoint_id = 2;
    c.events_consumed = 9;
    c.chunk_index = 2;
    w->commit_checkpoint(c);
  }
  auto bytes = slurp(seg_path(2));
  bytes[kSegmentHeaderBytes + 12] ^= 0xFF;  // inside the meta record body
  dump(seg_path(2), bytes);

  const auto rec = recover(dir_);
  EXPECT_EQ(rec.segments_rolled_back, 1u);
  EXPECT_EQ(rec.checkpoint.checkpoint_id, 0u);  // segment 1's initial cut
  EXPECT_EQ(rec.resume_events, 9u);             // via its chunk markers
  EXPECT_EQ(rec.next_segment, 3u);              // never reuse a damaged seq
}

TEST_F(JournalCorruptionTest, TruncatedHeaderIsTyped) {
  write_valid_journal(dir_);
  auto bytes = slurp(seg_path());
  bytes.resize(kSegmentHeaderBytes - 4);
  dump(seg_path(), bytes);
  EXPECT_EQ(recover_error(dir_), ErrorCode::kBadHeader);
}

TEST_F(JournalCorruptionTest, StaleFormatVersionIsTyped) {
  write_valid_journal(dir_);
  auto bytes = slurp(seg_path());
  bytes[4] = static_cast<std::uint8_t>(kFormatVersion + 1);  // u16 LE lo byte
  dump(seg_path(), bytes);
  EXPECT_EQ(recover_error(dir_), ErrorCode::kBadVersion);
}

TEST_F(JournalCorruptionTest, WrongMagicIsTyped) {
  write_valid_journal(dir_);
  auto bytes = slurp(seg_path());
  bytes[0] = 0x00;
  dump(seg_path(), bytes);
  EXPECT_EQ(recover_error(dir_), ErrorCode::kBadMagic);
}

TEST_F(JournalCorruptionTest, HeaderSequenceMismatchIsTyped) {
  write_valid_journal(dir_);
  auto bytes = slurp(seg_path());
  bytes[8] ^= 0x01;  // header seq no longer matches the filename
  dump(seg_path(), bytes);
  EXPECT_EQ(recover_error(dir_), ErrorCode::kBadHeader);
}

TEST_F(JournalCorruptionTest, EmptyDirectoryIsTyped) {
  EXPECT_EQ(recover_error(dir_), ErrorCode::kNoCheckpoint);
}

TEST_F(JournalCorruptionTest, MissingDirectoryIsIo) {
  EXPECT_EQ(recover_error(dir_ + "/nope"), ErrorCode::kIo);
}

TEST_F(JournalCorruptionTest, CommitlessSegmentIsTyped) {
  // A crash can abandon a pending segment before its commit; alone it
  // holds no cut.
  Meta meta;
  meta.endpoints = {"unix:/tmp/w0.sock"};
  { auto w = Writer::create(dir_, meta, Writer::Options{}); }
  EXPECT_EQ(recover_error(dir_), ErrorCode::kNoCheckpoint);
}

TEST_F(JournalCorruptionTest, AbandonedPendingSegmentRollsBack) {
  write_valid_journal(dir_);
  // A pending segment the crash abandoned mid-checkpoint, then damaged:
  // recovery rolls back to segment 1 either way.
  Meta meta;
  meta.endpoints = {"unix:/tmp/w0.sock"};
  {
    auto w = Writer::continue_at(dir_, 2, meta, Writer::Options{});
  }
  const auto rec = recover(dir_);
  EXPECT_EQ(rec.segments_rolled_back, 1u);
  EXPECT_EQ(rec.resume_events, 9u);
}

}  // namespace
}  // namespace cosmos::journal
