// Snow-drift monitoring with result-stream sharing (Sections 2, 2.1).
//
// Two scientists at different proxies submit the overlapping queries Q3 and
// Q4 (Table 1). COSMOS deploys them on the same processor, folds them into
// the covering query Q5, and splits the shared result stream back into the
// two users' results via their p2 subscriptions.
#include <cstdio>

#include "cosmos/cosmos.h"
#include "cql/parser.h"
#include "net/topology.h"
#include "sim/sensor_trace.h"

using namespace cosmos;

int main() {
  // Overlay: source - processor - relay - two user proxies.
  net::Topology topo{5};
  topo.add_edge(NodeId{0}, NodeId{1}, 10.0);
  topo.add_edge(NodeId{1}, NodeId{2}, 120.0);  // the shared wide-area hop
  topo.add_edge(NodeId{2}, NodeId{3}, 5.0);
  topo.add_edge(NodeId{2}, NodeId{4}, 5.0);
  std::vector<NodeId> all{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3},
                          NodeId{4}};
  const net::LatencyMatrix lat{topo, all};

  middleware::Cosmos sys{all, lat};
  sys.register_source("Station1", sim::sensor_schema(), NodeId{0});
  sys.register_source("Station2", sim::sensor_schema(), NodeId{0});

  const auto q3 = cql::parse_query(
      "SELECT S2.* FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 "
      "WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10",
      QueryId{3}, /*proxy=*/NodeId{3});
  const auto q4 = cql::parse_query(
      "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp "
      "FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2 "
      "WHERE S1.snowHeight > S2.snowHeight",
      QueryId{4}, /*proxy=*/NodeId{4});

  std::size_t r3 = 0, r4 = 0;
  sys.submit(q3, NodeId{1}, [&r3](QueryId, const stream::Tuple&) { ++r3; });
  sys.submit(q4, NodeId{1}, [&r4](QueryId, const stream::Tuple&) { ++r4; });
  std::printf("submitted 2 queries; deployed units: %zu (merged into Q5)\n",
              sys.deployed_units());

  sim::SensorTraceParams params;
  params.stations = 2;
  params.readings_per_station = 300;
  Rng rng{8};
  for (const auto& r : sim::make_sensor_trace(params, rng)) {
    sys.push(sim::station_stream_name(r.station), r.tuple);
  }

  std::printf("scientist A (Q3): %zu results\n", r3);
  std::printf("scientist B (Q4): %zu results\n", r4);
  std::printf("pub/sub traffic: %.0f bytes, %.3e byte*ms weighted\n",
              sys.traffic().bytes, sys.traffic().weighted_cost);
  return 0;
}
