#include "stream/engine.h"

#include <stdexcept>

#include "runtime/tuple_batch.h"

namespace cosmos::stream {
namespace {

[[noreturn]] void throw_out_of_order(const std::string& name, Timestamp got,
                                     Timestamp last) {
  throw std::invalid_argument{
      "Engine: out-of-order tuple on stream " + name + ": ts " +
      std::to_string(got) + " after ts " + std::to_string(last) +
      " (ordering is per-stream; equal timestamps are allowed, including "
      "across streams)"};
}

}  // namespace

void Engine::register_stream(const std::string& name, Schema schema) {
  if (streams_.contains(name)) {
    throw std::invalid_argument{"Engine: duplicate stream " + name};
  }
  StreamState st;
  st.schema = std::move(schema);
  streams_.emplace(name, std::move(st));
}

const Schema& Engine::schema(const std::string& name) const {
  const auto it = streams_.find(name);
  if (it == streams_.end()) {
    throw std::out_of_range{"Engine: unknown stream " + name};
  }
  return it->second.schema;
}

Engine::StreamState& Engine::state(const std::string& name) {
  const auto it = streams_.find(name);
  if (it == streams_.end()) {
    throw std::out_of_range{"Engine: unknown stream " + name};
  }
  return it->second;
}

std::size_t Engine::attach(const std::string& name, Tap tap) {
  if (!tap) throw std::invalid_argument{"Engine: null tap"};
  auto& st = state(name);
  const std::size_t id = st.next_tap_id++;
  st.taps.push_back({id, std::move(tap), nullptr});
  return id;
}

std::size_t Engine::attach(const std::string& name, BatchTap batch,
                           Tap scalar) {
  if (!batch || !scalar) {
    throw std::invalid_argument{"Engine: null batch/scalar tap"};
  }
  auto& st = state(name);
  const std::size_t id = st.next_tap_id++;
  st.taps.push_back({id, std::move(scalar), std::move(batch)});
  return id;
}

void Engine::detach(const std::string& name, std::size_t tap_id) {
  auto& st = state(name);
  std::erase_if(st.taps, [tap_id](const auto& e) { return e.id == tap_id; });
}

void Engine::publish(const std::string& name, const Tuple& t) {
  auto& st = state(name);
  if (t.ts < st.last_ts) throw_out_of_order(name, t.ts, st.last_ts);
  st.last_ts = t.ts;
  ++st.published;
  // Copy the tap list: a tap may attach/detach while we iterate (a query
  // result published downstream may register new consumers).
  const auto taps = st.taps;
  for (const auto& e : taps) e.scalar(t);
}

void Engine::publish_batch(const std::string& name,
                           const runtime::TupleBatch& batch) {
  // Validate even for empty batches: a misrouted batch should fail loudly
  // whether or not it happens to carry rows.
  if (batch.stream() != name) {
    throw std::invalid_argument{"Engine: batch for stream " + batch.stream() +
                                " published on " + name};
  }
  auto& st = state(name);
  if (batch.empty()) return;
  if (!batch.timestamps_ordered()) {
    throw std::invalid_argument{"Engine: batch on stream " + name +
                                " is not timestamp-ordered"};
  }
  if (batch.first_ts() < st.last_ts) {
    throw_out_of_order(name, batch.first_ts(), st.last_ts);
  }
  st.last_ts = batch.last_ts();
  st.published += batch.size();
  // One tap-list snapshot per batch (vs. per tuple on the scalar path).
  const auto taps = st.taps;
  // Batch-aware taps take the whole batch with zero materialization; rows
  // are only materialized if a scalar-only tap remains.
  bool any_scalar_only = false;
  for (const auto& e : taps) {
    if (e.batch) {
      e.batch(batch);
    } else {
      any_scalar_only = true;
    }
  }
  if (!any_scalar_only) return;
  Tuple scratch;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch.materialize(i, scratch);
    for (const auto& e : taps) {
      if (!e.batch) e.scalar(scratch);
    }
  }
}

std::size_t Engine::published_count(const std::string& name) const {
  const auto it = streams_.find(name);
  if (it == streams_.end()) {
    throw std::out_of_range{"Engine: unknown stream " + name};
  }
  return it->second.published;
}

}  // namespace cosmos::stream
